#include <gtest/gtest.h>

#include "gen/small_graphs.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace hopdb {
namespace {

TEST(EdgeListTest, AddGrowsVertexCount) {
  EdgeList e;
  e.Add(3, 7);
  EXPECT_EQ(e.num_vertices(), 8u);
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeListTest, NormalizeRemovesSelfLoopsAndParallels) {
  EdgeList e(4, /*directed=*/true);
  e.Add(0, 1, 5);
  e.Add(0, 1, 3);  // parallel, lighter
  e.Add(2, 2);     // self loop
  e.Add(1, 0);     // anti-parallel: kept (directed)
  e.Normalize();
  ASSERT_EQ(e.num_edges(), 2u);
  EXPECT_EQ(e.edges()[0], Edge(0, 1, 3));
  EXPECT_EQ(e.edges()[1], Edge(1, 0, 1));
}

TEST(EdgeListTest, NormalizeUndirectedMergesOrientations) {
  EdgeList e(3, /*directed=*/false);
  e.Add(1, 0, 4);
  e.Add(0, 1, 2);
  e.Normalize();
  ASSERT_EQ(e.num_edges(), 1u);
  EXPECT_EQ(e.edges()[0].weight, 2u);
}

TEST(EdgeListTest, ValidateCatchesBadEdges) {
  EdgeList e(2, true);
  e.Add(0, 1);
  EXPECT_TRUE(e.Validate().ok());
  e.mutable_edges().push_back(Edge(0, 5));
  EXPECT_FALSE(e.Validate().ok());
  e.mutable_edges().pop_back();
  e.mutable_edges().push_back(Edge(0, 1, 0));
  EXPECT_FALSE(e.Validate().ok());
}

TEST(EdgeListTest, SizeAccounting) {
  EdgeList e(3, true);
  e.Add(0, 1);
  e.Add(1, 2);
  EXPECT_EQ(e.SizeBytes(true), 2u * 9u);  // paper: 4+4+1 bytes per edge
}

TEST(CsrGraphTest, DirectedAdjacency) {
  EdgeList e(4, /*directed=*/true);
  e.Add(0, 1);
  e.Add(0, 2);
  e.Add(2, 1);
  e.Add(3, 0);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 4u);
  EXPECT_EQ(g->num_edges(), 4u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->InDegree(1), 2u);
  EXPECT_EQ(g->InDegree(0), 1u);
  EXPECT_EQ(g->Degree(0), 3u);
  ASSERT_EQ(g->OutArcs(0).size(), 2u);
  EXPECT_EQ(g->OutArcs(0)[0].to, 1u);
  EXPECT_EQ(g->OutArcs(0)[1].to, 2u);
  ASSERT_EQ(g->InArcs(1).size(), 2u);
  EXPECT_EQ(g->InArcs(1)[0].to, 0u);
  EXPECT_EQ(g->InArcs(1)[1].to, 2u);
}

TEST(CsrGraphTest, UndirectedSymmetric) {
  EdgeList e = PathGraph(4);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->directed());
  EXPECT_EQ(g->Degree(0), 1u);
  EXPECT_EQ(g->Degree(1), 2u);
  // In and out views coincide.
  EXPECT_EQ(g->InArcs(1).size(), g->OutArcs(1).size());
  EXPECT_EQ(g->num_edges(), 3u);
}

TEST(CsrGraphTest, ArcWeightLookup) {
  EdgeList e(3, true);
  e.Add(0, 1, 7);
  e.Add(1, 2, 9);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ArcWeight(0, 1), 7u);
  EXPECT_EQ(g->ArcWeight(1, 2), 9u);
  EXPECT_EQ(g->ArcWeight(0, 2), kInfDistance);
  EXPECT_TRUE(g->weighted());
}

TEST(CsrGraphTest, MaxDegree) {
  auto g = CsrGraph::FromEdgeList(StarGraph(6));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->MaxDegree(), 6u);
}

TEST(CsrGraphTest, ToEdgeListRoundTrip) {
  EdgeList e = GridGraph(3, 3);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EdgeList back = g->ToEdgeList();
  back.Normalize();
  EXPECT_EQ(back.num_edges(), e.num_edges());
  EXPECT_EQ(back.num_vertices(), e.num_vertices());
}

TEST(CsrGraphTest, PaperSizeBytes) {
  auto g = CsrGraph::FromEdgeList(PathGraph(5));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->PaperSizeBytes(), 4u * 9u);
}

TEST(CsrGraphTest, EmptyGraph) {
  EdgeList e(0, true);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(CsrGraphTest, IsolatedVertices) {
  EdgeList e(5, false);
  e.Add(0, 1);
  e.Normalize();
  e.set_num_vertices(5);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 5u);
  EXPECT_EQ(g->Degree(4), 0u);
  EXPECT_TRUE(g->OutArcs(4).empty());
}

TEST(TypesTest, SaturatingAdd) {
  EXPECT_EQ(SaturatingAdd(2, 3), 5u);
  EXPECT_EQ(SaturatingAdd(kInfDistance, 1), kInfDistance);
  EXPECT_EQ(SaturatingAdd(1, kInfDistance), kInfDistance);
  EXPECT_EQ(SaturatingAdd(kInfDistance - 1, kInfDistance - 1), kInfDistance);
}

}  // namespace
}  // namespace hopdb
