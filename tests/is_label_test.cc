#include "baselines/is_label.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"

namespace hopdb {
namespace {

void ExpectExact(const CsrGraph& g, const TwoHopIndex& idx) {
  ASSERT_TRUE(VerifyExactDistances(
                  g, [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

TEST(IsLabelTest, PathGraph) {
  auto g = CsrGraph::FromEdgeList(PathGraph(12));
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->num_levels, 1u);
  ExpectExact(*g, out->index);
  EXPECT_TRUE(out->index.Validate(/*ranked=*/false).ok());
}

TEST(IsLabelTest, StarGraphTwoLevels) {
  auto g = CsrGraph::FromEdgeList(StarGraphGS());
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  // Leaves form one independent set, the hub the next.
  EXPECT_EQ(out->num_levels, 2u);
  ExpectExact(*g, out->index);
  EXPECT_EQ(out->index.TotalEntries(), 5u);
}

TEST(IsLabelTest, DirectedExample) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  ExpectExact(*g, out->index);
}

TEST(IsLabelTest, WeightedUndirected) {
  EdgeList e = GridGraph(5, 5);
  AssignUniformWeights(&e, 1, 9, 7);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  ExpectExact(*g, out->index);
}

TEST(IsLabelTest, WeightedDirected) {
  ErOptions er;
  er.num_vertices = 80;
  er.num_edges = 320;
  er.directed = true;
  er.seed = 5;
  auto edges = GenerateErdosRenyi(er);
  ASSERT_TRUE(edges.ok());
  AssignUniformWeights(&*edges, 1, 5, 9);
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  ExpectExact(*g, out->index);
}

TEST(IsLabelTest, Disconnected) {
  auto g = CsrGraph::FromEdgeList(TwoTriangles());
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.Query(0, 4), kInfDistance);
  ExpectExact(*g, out->index);
}

TEST(IsLabelTest, ScaleFreeExactAndTracksGrowth) {
  GlpOptions glp;
  glp.num_vertices = 600;
  glp.seed = 11;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabel(*g);
  ASSERT_TRUE(out.ok());
  ExpectExact(*g, out->index);
  EXPECT_GE(out->peak_intermediate_edges, g->num_edges());
}

TEST(IsLabelTest, GrowthCapAborts) {
  // Dense scale-free graphs densify around hubs during augmentation —
  // the paper's Flickr observation. A tight cap must trip.
  GlpOptions glp;
  glp.num_vertices = 2000;
  glp.target_avg_degree = 10;
  glp.seed = 13;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  IsLabelOptions opts;
  opts.max_edge_growth_factor = 1.01;
  auto out = BuildIsLabel(*g, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

TEST(IsLabelTest, DeadlineAborts) {
  GlpOptions glp;
  glp.num_vertices = 5000;
  glp.seed = 15;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  IsLabelOptions opts;
  opts.time_budget_seconds = 1e-7;
  auto out = BuildIsLabel(*g, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

// ---------------------------------------------------------------------------
// Partial (k-level) mode: labels + residual graph Gk + seeded bi-Dijkstra.
// ---------------------------------------------------------------------------

void ExpectPartialExact(const CsrGraph& g, uint32_t k) {
  auto out = BuildIsLabelPartial(g, k);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const uint32_t levels = out->num_levels;
  EXPECT_LE(levels, k == 0 ? levels : k);
  auto engine = IsLabelPartialIndex::Create(std::move(*out));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(VerifyExactDistances(g,
                                   [&](VertexId s, VertexId t) {
                                     return engine->Query(s, t);
                                   })
                  .ok())
      << "k=" << k;
}

TEST(IsLabelPartialTest, EveryLevelCapIsExactOnPath) {
  auto g = CsrGraph::FromEdgeList(PathGraph(14));
  ASSERT_TRUE(g.ok());
  for (uint32_t k = 1; k <= 6; ++k) ExpectPartialExact(*g, k);
}

TEST(IsLabelPartialTest, EveryLevelCapIsExactOnDirectedExample) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  for (uint32_t k = 1; k <= 4; ++k) ExpectPartialExact(*g, k);
}

TEST(IsLabelPartialTest, ExactOnScaleFreeGraphs) {
  for (const bool directed : {false, true}) {
    GlpOptions glp;
    glp.num_vertices = 220;
    glp.seed = 31;
    auto edges = directed ? GenerateDirectedGlp(glp) : GenerateGlp(glp);
    ASSERT_TRUE(edges.ok());
    auto g = CsrGraph::FromEdgeList(*edges);
    ASSERT_TRUE(g.ok());
    for (uint32_t k : {1u, 2u, 4u}) ExpectPartialExact(*g, k);
  }
}

TEST(IsLabelPartialTest, ExactOnWeightedAndDisconnected) {
  ErOptions er;
  er.num_vertices = 150;
  er.num_edges = 240;  // sparse -> several components
  er.directed = true;
  er.seed = 33;
  auto edges = GenerateErdosRenyi(er);
  ASSERT_TRUE(edges.ok());
  AssignUniformWeights(&*edges, 1, 9, 34);
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  for (uint32_t k : {1u, 3u}) ExpectPartialExact(*g, k);
}

TEST(IsLabelPartialTest, ResidualShrinksWithMoreLevels) {
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 35;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());

  uint64_t prev_vertices = g->num_vertices() + 1;
  for (uint32_t k : {1u, 2u, 3u}) {
    auto out = BuildIsLabelPartial(*g, k);
    ASSERT_TRUE(out.ok());
    auto engine = IsLabelPartialIndex::Create(std::move(*out));
    ASSERT_TRUE(engine.ok());
    // Each extra level strictly peels survivors away.
    EXPECT_LT(engine->residual_vertices(), prev_vertices);
    prev_vertices = engine->residual_vertices();
    EXPECT_GT(engine->ResidentBytes(), 0u);
  }
}

TEST(IsLabelPartialTest, SurvivorsHaveEmptyLabelsRemovedHaveSome) {
  auto g = CsrGraph::FromEdgeList(StarGraphGS());
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabelPartial(*g, 1);
  ASSERT_TRUE(out.ok());
  // Level 1 removes the leaves (low degree); the hub survives into Gk.
  EXPECT_EQ(out->level[0], 0u);  // hub a = vertex 0 survives
  EXPECT_TRUE(out->index.OutLabel(0).empty());
  for (VertexId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_EQ(out->level[leaf], 1u);
    EXPECT_FALSE(out->index.OutLabel(leaf).empty());
  }
}

TEST(IsLabelPartialTest, FullCollapseLeavesEmptyResidual) {
  auto g = CsrGraph::FromEdgeList(PathGraph(10));
  ASSERT_TRUE(g.ok());
  auto out = BuildIsLabelPartial(*g, 0);  // unbounded = full collapse
  ASSERT_TRUE(out.ok());
  auto engine = IsLabelPartialIndex::Create(std::move(*out));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->residual_vertices(), 0u);
  ASSERT_TRUE(VerifyExactDistances(*g,
                                   [&](VertexId s, VertexId t) {
                                     return engine->Query(s, t);
                                   })
                  .ok());
}

}  // namespace
}  // namespace hopdb
