// Parallel build (BuildOptions::num_threads): the labeling must be
// bit-identical for every thread count — generation order only permutes
// the candidate multiset (canonicalized by the dedup sort) and pruning
// decisions depend only on iteration-start snapshots. Plus unit tests for
// the ParallelChunks primitive itself.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <fstream>
#include <iterator>
#include <mutex>
#include <numeric>
#include <string>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"
#include "util/parallel.h"
#include "util/random.h"

namespace hopdb {
namespace {

// --- ParallelChunks primitive ---

TEST(ParallelChunksTest, CoversRangeExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 3u, 8u, 64u}) {
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelChunks(threads, n, [&](size_t b, size_t e, uint32_t) {
        for (size_t i = b; i < e; ++i) hits[i]++;
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelChunksTest, ChunksAreContiguousAndOrdered) {
  std::mutex mu;
  std::vector<std::array<size_t, 3>> spans;  // begin, end, chunk
  ParallelChunks(4, 103, [&](size_t b, size_t e, uint32_t c) {
    std::lock_guard<std::mutex> lock(mu);
    spans.push_back({b, e, c});
  });
  ASSERT_EQ(spans.size(), 4u);
  std::sort(spans.begin(), spans.end(),
            [](const auto& a, const auto& b) { return a[2] < b[2]; });
  size_t expect_begin = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s[0], expect_begin);
    EXPECT_GE(s[1], s[0]);
    expect_begin = s[1];
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ParallelChunksTest, MoreThreadsThanWorkDegrades) {
  std::atomic<int> calls{0};
  ParallelChunks(16, 3, [&](size_t b, size_t e, uint32_t) {
    calls++;
    EXPECT_EQ(e - b, 1u);  // 3 chunks of one element each
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelChunksTest, ZeroThreadsBehavesAsSequential) {
  std::vector<int> hits(10, 0);
  ParallelChunks(0, hits.size(), [&](size_t b, size_t e, uint32_t chunk) {
    EXPECT_EQ(chunk, 0u);
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(HardwareThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

// --- Determinism of the parallel build ---

void ExpectIdenticalIndexes(const TwoHopIndex& a, const TwoHopIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.directed(), b.directed());
  ASSERT_EQ(a.TotalEntries(), b.TotalEntries());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ao = a.OutLabel(v);
    const auto bo = b.OutLabel(v);
    ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()))
        << "out label of " << v;
    const auto ai = a.InLabel(v);
    const auto bi = b.InLabel(v);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
        << "in label of " << v;
  }
}

struct ParCase {
  std::string name;
  BuildMode mode;
  bool directed;
  bool weighted;
  uint64_t seed;
};

std::string ParCaseName(const ::testing::TestParamInfo<ParCase>& info) {
  return info.param.name + "_" + BuildModeName(info.param.mode) +
         (info.param.directed ? "_dir" : "_und") +
         (info.param.weighted ? "_wgt" : "_unw") + "_s" +
         std::to_string(info.param.seed);
}

class ParallelBuildTest : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelBuildTest, ThreadCountDoesNotChangeTheIndex) {
  const ParCase& c = GetParam();
  EdgeList edges;
  if (c.name == "glp") {
    GlpOptions glp;
    glp.num_vertices = 400;  // large enough to cross the 1024-candidate
    glp.seed = c.seed;       // threshold that enables parallel paths
    edges = c.directed ? GenerateDirectedGlp(glp).ValueOrDie()
                       : GenerateGlp(glp).ValueOrDie();
  } else {
    ErOptions er;
    er.num_vertices = 300;
    er.num_edges = 900;
    er.directed = c.directed;
    er.seed = c.seed;
    edges = GenerateErdosRenyi(er).ValueOrDie();
  }
  if (c.weighted) {
    AssignUniformWeights(&edges, 1, 9, DeriveSeed(c.seed, 19));
  }
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();

  BuildOptions opts;
  opts.mode = c.mode;
  opts.hybrid_switch_iteration = 3;
  opts.num_threads = 1;
  auto reference = BuildHopLabeling(*ranked, opts);
  reference.status().CheckOK();

  for (const uint32_t threads : {2u, 4u, 8u, 0u /* all hardware */}) {
    opts.num_threads = threads;
    auto parallel = BuildHopLabeling(*ranked, opts);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdenticalIndexes(reference->index, parallel->index);
    // Iteration trajectories must match too (same candidate counts).
    ASSERT_EQ(reference->stats.num_rule_iterations,
              parallel->stats.num_rule_iterations);
    for (size_t i = 0; i < reference->stats.iterations.size(); ++i) {
      const IterationStats& r = reference->stats.iterations[i];
      const IterationStats& p = parallel->stats.iterations[i];
      ASSERT_EQ(r.raw_candidates, p.raw_candidates) << "iter " << i;
      ASSERT_EQ(r.deduped_candidates, p.deduped_candidates) << "iter " << i;
      ASSERT_EQ(r.pruned, p.pruned) << "iter " << i;
      ASSERT_EQ(r.survivors, p.survivors) << "iter " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParallelSweep, ParallelBuildTest,
    ::testing::Values(
        ParCase{"glp", BuildMode::kHybrid, false, false, 51},
        ParCase{"glp", BuildMode::kHybrid, true, false, 52},
        ParCase{"glp", BuildMode::kHopStepping, true, false, 53},
        ParCase{"glp", BuildMode::kHopDoubling, false, false, 54},
        ParCase{"glp", BuildMode::kHybrid, true, true, 55},
        ParCase{"er", BuildMode::kHybrid, true, false, 56},
        ParCase{"er", BuildMode::kHopDoubling, true, true, 57}),
    ParCaseName);

// The strongest form of the determinism guarantee: not just equal label
// sets but byte-identical serialized indexes (HLI1 bytes including the
// embedded flat-mirror section) for every thread count. Directed +
// weighted + hybrid exercises every code path at once: both label
// sides, in-place distance updates, and the stepping->doubling switch.
TEST(ParallelBuildTest, SerializedIndexIsByteIdenticalAcrossThreadCounts) {
  GlpOptions glp;
  // Large enough that the peak iterations cross the parallel-sort,
  // parallel-apply and flat-witness thresholds (so every parallel code
  // path really runs), small enough for the sanitizer presets.
  glp.num_vertices = 1500;
  glp.seed = 71;
  EdgeList edges = GenerateDirectedGlp(glp).ValueOrDie();
  AssignUniformWeights(&edges, 1, 9, DeriveSeed(71, 23));
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  auto ranked = RelabelByRank(
      *base, ComputeRanking(*base, RankingPolicy::kInOutProduct));
  ranked.status().CheckOK();

  auto tmp = TempDir::Create("hopdb_par_det");
  tmp.status().CheckOK();

  std::string reference_bytes;
  for (const uint32_t threads : {1u, 2u, 3u, 8u}) {
    BuildOptions opts;
    opts.mode = BuildMode::kHybrid;
    opts.hybrid_switch_iteration = 3;
    opts.num_threads = threads;
    auto built = BuildHopLabeling(*ranked, opts);
    ASSERT_TRUE(built.ok()) << "threads=" << threads;

    const std::string path =
        tmp->File("index_t" + std::to_string(threads) + ".hli");
    built->index.Save(path).CheckOK();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty());
    if (threads == 1) {
      reference_bytes = std::move(bytes);
    } else {
      ASSERT_EQ(bytes.size(), reference_bytes.size())
          << "threads=" << threads;
      ASSERT_TRUE(bytes == reference_bytes)
          << "serialized index differs at threads=" << threads;
    }
  }
}

TEST(ParallelBuildTest, PruningDisabledIsAlsoDeterministic) {
  GlpOptions glp;
  glp.num_vertices = 200;
  glp.seed = 61;
  auto base = CsrGraph::FromEdgeList(GenerateGlp(glp).ValueOrDie());
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(*base, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();

  BuildOptions opts;
  opts.prune = false;
  opts.num_threads = 1;
  auto a = BuildHopLabeling(*ranked, opts);
  a.status().CheckOK();
  opts.num_threads = 8;
  auto b = BuildHopLabeling(*ranked, opts);
  b.status().CheckOK();
  ExpectIdenticalIndexes(a->index, b->index);
}

}  // namespace
}  // namespace hopdb
