// Property tests for the query primitives against brute-force reference
// implementations over randomized label vectors — independent of any
// graph or builder, so failures localize to the intersection code.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "labeling/incremental.h"
#include "labeling/label_entry.h"
#include "labeling/two_hop_index.h"
#include "query/knn.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

LabelVector RandomLabel(Rng* rng, VertexId pivot_space, size_t max_len) {
  std::map<VertexId, Distance> entries;
  size_t len = rng->Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    VertexId pivot = static_cast<VertexId>(rng->Below(pivot_space));
    Distance dist = static_cast<Distance>(rng->Uniform(1, 50));
    entries.emplace(pivot, dist);  // keeps first; set semantics
  }
  LabelVector out;
  for (auto [p, d] : entries) out.push_back({p, d});
  return out;
}

Distance BruteIntersect(const LabelVector& a, const LabelVector& b) {
  Distance best = kInfDistance;
  for (const LabelEntry& ea : a) {
    for (const LabelEntry& eb : b) {
      if (ea.pivot == eb.pivot) {
        best = std::min(best, SaturatingAdd(ea.dist, eb.dist));
      }
    }
  }
  return best;
}

Distance BruteQuery(const LabelVector& out_s, const LabelVector& in_t,
                    VertexId s, VertexId t) {
  if (s == t) return 0;
  Distance best = BruteIntersect(out_s, in_t);
  for (const LabelEntry& e : out_s) {
    if (e.pivot == t) best = std::min(best, e.dist);
  }
  for (const LabelEntry& e : in_t) {
    if (e.pivot == s) best = std::min(best, e.dist);
  }
  return best;
}

class LabelQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelQueryPropertyTest, IntersectMatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    LabelVector a = RandomLabel(&rng, 40, 20);
    LabelVector b = RandomLabel(&rng, 40, 20);
    ASSERT_EQ(IntersectLabels(a, b), BruteIntersect(a, b))
        << "round " << round;
  }
}

TEST_P(LabelQueryPropertyTest, QueryHalvesMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int round = 0; round < 300; ++round) {
    LabelVector out_s = RandomLabel(&rng, 60, 15);
    LabelVector in_t = RandomLabel(&rng, 60, 15);
    VertexId s = static_cast<VertexId>(rng.Below(70));
    VertexId t = static_cast<VertexId>(rng.Below(70));
    ASSERT_EQ(QueryLabelHalves(out_s, in_t, s, t),
              BruteQuery(out_s, in_t, s, t))
        << "round " << round << " s=" << s << " t=" << t;
  }
}

TEST_P(LabelQueryPropertyTest, LookupMatchesLinearScan) {
  Rng rng(GetParam() ^ 0x1234);
  for (int round = 0; round < 300; ++round) {
    LabelVector l = RandomLabel(&rng, 50, 25);
    VertexId probe = static_cast<VertexId>(rng.Below(55));
    Distance expect = kInfDistance;
    size_t expect_ub = l.size();
    for (size_t i = 0; i < l.size(); ++i) {
      if (l[i].pivot == probe) expect = l[i].dist;
    }
    for (size_t i = l.size(); i-- > 0;) {
      if (l[i].pivot <= probe) break;
      expect_ub = i;
    }
    ASSERT_EQ(LookupPivot(l, probe), expect);
    ASSERT_EQ(UpperBoundPivot(l, probe), expect_ub);
  }
}

// WITHIN / REACH over arbitrary random labels (no graph, no cover
// property): the engine's radius-bounded inverted-list scan must equal
// the brute-force per-pair sweep {v != s : Query(s, v) <= r} of the SAME
// index, distances included — a pure label-machinery property, so a
// failure localizes to the inverted-list construction or the prefix
// break, never to a builder.
TEST_P(LabelQueryPropertyTest, WithinMatchesPerPairSweep) {
  Rng rng(GetParam() ^ 0x5EED);
  for (const bool directed : {false, true}) {
    constexpr VertexId kN = 60;
    std::vector<LabelVector> out(kN), in;
    for (VertexId v = 0; v < kN; ++v) out[v] = RandomLabel(&rng, kN, 10);
    if (directed) {
      in.resize(kN);
      for (VertexId v = 0; v < kN; ++v) in[v] = RandomLabel(&rng, kN, 10);
    }
    TwoHopIndex index(std::move(out), std::move(in), directed);
    KnnEngine engine(index, KnnEngine::Direction::kForward);
    for (int round = 0; round < 40; ++round) {
      const VertexId s = static_cast<VertexId>(rng.Below(kN));
      const Distance radius = static_cast<Distance>(rng.Uniform(1, 60));
      std::vector<KnnEngine::Neighbor> got = engine.QueryWithin(s, radius);
      std::sort(got.begin(), got.end(),
                [](const KnnEngine::Neighbor& a, const KnnEngine::Neighbor& b) {
                  return a.vertex < b.vertex;
                });
      std::vector<std::pair<VertexId, Distance>> want;
      for (VertexId v = 0; v < kN; ++v) {
        const Distance d = index.Query(s, v);
        if (v != s && d <= radius) want.emplace_back(v, d);
      }
      ASSERT_EQ(got.size(), want.size())
          << "directed=" << directed << " s=" << s << " r=" << radius;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].vertex, want[i].first) << "s=" << s;
        ASSERT_EQ(got[i].dist, want[i].second) << "s=" << s;
      }
      // REACH is DIST + a comparison; assert the equivalence the server
      // arm relies on, for sampled targets.
      const VertexId t = static_cast<VertexId>(rng.Below(kN));
      const Distance d = index.Query(s, t);
      const bool reach = d != kInfDistance && d <= radius;
      const bool in_within =
          s == t ||  // d(s, s) == 0 <= radius always
          std::any_of(got.begin(), got.end(),
                      [t](const KnnEngine::Neighbor& nb) {
                        return nb.vertex == t;
                      });
      ASSERT_EQ(reach, in_within)
          << "REACH/WITHIN disagree at s=" << s << " t=" << t;
    }
  }
}

// Update-stream property: after ANY prefix of a random insert/delete
// stream applied through the incremental repairer, every queried
// distance equals the BFS oracle on the graph as mutated so far. Unlike
// the end-state differential tests, this checks the invariant holds at
// every intermediate step, so a transiently-wrong repair cannot hide
// behind a later op that happens to fix it.
TEST_P(LabelQueryPropertyTest, UpdateStreamPrefixesMatchOracle) {
  GlpOptions gopt;
  gopt.num_vertices = 120;
  gopt.target_avg_degree = 4.0;
  gopt.seed = GetParam() * 1000 + 7;
  auto edges = GenerateGlp(gopt);
  ASSERT_TRUE(edges.ok()) << edges.status();
  auto graph = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(graph.ok()) << graph.status();
  const RankMapping mapping = ComputeRanking(*graph, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*graph, mapping);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  auto built = BuildHopLabeling(*ranked, BuildOptions());
  ASSERT_TRUE(built.ok()) << built.status();

  TwoHopIndex index = std::move(built->index);
  DynamicGraph dyn = DynamicGraph::FromGraph(*ranked);
  IncrementalUpdater updater(&dyn, &index);

  const VertexId n = ranked->num_vertices();
  Rng rng(DeriveSeed(GetParam(), 99));
  int applied = 0;
  while (applied < 40) {
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    UpdateOp op;
    op.u = u;
    op.v = v;
    op.kind = dyn.ArcWeight(u, v) != kInfDistance && rng.Chance(0.5)
                  ? UpdateOp::Kind::kDelEdge
                  : UpdateOp::Kind::kAddEdge;
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
    if (!*changed) continue;
    ++applied;

    // Check this prefix: repaired answers vs the oracle on the mutated
    // graph, two full rows per step.
    updater.Finalize();
    auto csr = CsrGraph::FromEdgeList(dyn.ToEdgeList());
    ASSERT_TRUE(csr.ok()) << csr.status();
    for (int row = 0; row < 2; ++row) {
      const VertexId s = static_cast<VertexId>(rng.Below(n));
      const std::vector<Distance> truth = ExactDistances(*csr, s);
      for (VertexId t = 0; t < n; ++t) {
        ASSERT_EQ(index.Query(s, t), truth[t])
            << "prefix " << applied << " mismatch at (" << s << ", " << t
            << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelQueryPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hopdb
