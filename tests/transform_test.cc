#include "graph/transform.h"

#include <gtest/gtest.h>

#include "gen/small_graphs.h"

namespace hopdb {
namespace {

TEST(TransformTest, ReverseEdges) {
  EdgeList e(3, /*directed=*/true);
  e.Add(0, 1, 5);
  e.Add(1, 2, 7);
  e.Normalize();
  EdgeList r = ReverseEdges(e);
  ASSERT_EQ(r.num_edges(), 2u);
  EXPECT_EQ(r.edges()[0], Edge(1, 0, 5));
  EXPECT_EQ(r.edges()[1], Edge(2, 1, 7));
}

TEST(TransformTest, ReverseUndirectedIsNoop) {
  EdgeList e = PathGraph(4);
  EdgeList r = ReverseEdges(e);
  EXPECT_EQ(r.num_edges(), e.num_edges());
  EXPECT_FALSE(r.directed());
}

TEST(TransformTest, SymmetrizeCollapsesAntiParallel) {
  EdgeList e(3, /*directed=*/true);
  e.Add(0, 1, 5);
  e.Add(1, 0, 3);
  e.Add(1, 2, 2);
  e.Normalize();
  EdgeList u = Symmetrize(e);
  EXPECT_FALSE(u.directed());
  ASSERT_EQ(u.num_edges(), 2u);
  EXPECT_EQ(u.edges()[0].weight, 3u);  // min of 5 and 3
}

TEST(TransformTest, InducedSubgraph) {
  EdgeList e = PathGraph(5);  // 0-1-2-3-4
  std::vector<bool> keep = {true, true, false, true, true};
  std::vector<VertexId> old_ids;
  EdgeList sub = InducedSubgraph(e, keep, &old_ids);
  EXPECT_EQ(sub.num_vertices(), 4u);
  ASSERT_EQ(old_ids.size(), 4u);
  EXPECT_EQ(old_ids[2], 3u);
  // Only 0-1 and 3-4 survive (now 0-1 and 2-3).
  ASSERT_EQ(sub.num_edges(), 2u);
}

TEST(TransformTest, ComponentsOnDisconnectedGraph) {
  auto g = CsrGraph::FromEdgeList(TwoTriangles());
  ASSERT_TRUE(g.ok());
  uint32_t count = 0;
  auto comp = WeaklyConnectedComponents(*g, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(TransformTest, WeaklyConnectedIgnoresDirection) {
  EdgeList e(3, /*directed=*/true);
  e.Add(0, 1);
  e.Add(2, 1);  // 2 only reaches 1; still one weak component
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  uint32_t count = 0;
  WeaklyConnectedComponents(*g, &count);
  EXPECT_EQ(count, 1u);
}

TEST(TransformTest, LargestComponent) {
  EdgeList e(7, /*directed=*/false);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(2, 3);  // component of 4
  e.Add(4, 5);  // component of 2 (+isolated 6)
  e.Normalize();
  e.set_num_vertices(7);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> old_ids;
  EdgeList big = LargestComponent(*g, &old_ids);
  EXPECT_EQ(big.num_vertices(), 4u);
  EXPECT_EQ(big.num_edges(), 3u);
  EXPECT_EQ(old_ids[0], 0u);
}

}  // namespace
}  // namespace hopdb
