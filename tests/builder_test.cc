#include "labeling/builder.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "search/dijkstra.h"
#include "util/random.h"
#include "util/timer.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(
      g, g.directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

void ExpectExact(const CsrGraph& ranked, const TwoHopIndex& idx) {
  ASSERT_TRUE(VerifyExactDistances(
                  ranked,
                  [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

TEST(BuilderTest, EmptyGraph) {
  EdgeList e(0, false);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto out = BuildHopLabeling(*g, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.TotalEntries(), 0u);
}

TEST(BuilderTest, SingleVertex) {
  EdgeList e(1, false);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto out = BuildHopLabeling(*g, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.Query(0, 0), 0u);
}

TEST(BuilderTest, SingleEdgeDirected) {
  EdgeList e(2, true);
  e.Add(0, 1);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto out = BuildHopLabeling(*g, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.Query(0, 1), 1u);
  EXPECT_EQ(out->index.Query(1, 0), kInfDistance);
}

TEST(BuilderTest, PathGraphExactAllModes) {
  auto ranked = RankedGraph(PathGraph(30));
  ASSERT_TRUE(ranked.ok());
  for (BuildMode mode : {BuildMode::kHopStepping, BuildMode::kHopDoubling,
                         BuildMode::kHybrid}) {
    BuildOptions opts;
    opts.mode = mode;
    auto out = BuildHopLabeling(*ranked, opts);
    ASSERT_TRUE(out.ok()) << BuildModeName(mode);
    ExpectExact(*ranked, out->index);
    EXPECT_TRUE(out->index.Validate(/*ranked=*/true).ok());
  }
}

TEST(BuilderTest, IterationBoundsMatchTheorems) {
  // Path of 33 vertices: hop diameter DH = 32. Stepping needs <= DH
  // iterations (Thm. 6); doubling <= 2*ceil(log2 DH) (Thm. 4); both plus
  // the final empty iteration in our counting.
  auto ranked = RankedGraph(PathGraph(33));
  ASSERT_TRUE(ranked.ok());
  BuildOptions step;
  step.mode = BuildMode::kHopStepping;
  auto s = BuildHopLabeling(*ranked, step);
  ASSERT_TRUE(s.ok());
  EXPECT_LE(s->stats.num_rule_iterations, 33u);
  BuildOptions dbl;
  dbl.mode = BuildMode::kHopDoubling;
  auto d = BuildHopLabeling(*ranked, dbl);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(d->stats.num_rule_iterations, 2u * 5u + 1u);
  EXPECT_LT(d->stats.num_rule_iterations, s->stats.num_rule_iterations);
}

TEST(BuilderTest, DisconnectedGraph) {
  auto ranked = RankedGraph(TwoTriangles());
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(BuilderTest, CompleteGraph) {
  auto ranked = RankedGraph(CompleteGraph(12));
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
  // Every edge of K_n is the unique shortest path for its pair, so the
  // canonical labeling keeps all n(n-1)/2 edge entries (no 2-hop witness
  // of length <= 1 exists) — the same index PLL would build.
  EXPECT_EQ(out->index.TotalEntries(), 66u);
}

TEST(BuilderTest, GridGraphExact) {
  auto ranked = RankedGraph(GridGraph(7, 9));
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(BuilderTest, WeightedGraphExact) {
  EdgeList e = GridGraph(6, 6);
  AssignUniformWeights(&e, 1, 9, 77);
  auto ranked = RankedGraph(e);
  ASSERT_TRUE(ranked.ok());
  for (BuildMode mode : {BuildMode::kHopStepping, BuildMode::kHopDoubling,
                         BuildMode::kHybrid}) {
    BuildOptions opts;
    opts.mode = mode;
    auto out = BuildHopLabeling(*ranked, opts);
    ASSERT_TRUE(out.ok()) << BuildModeName(mode);
    ExpectExact(*ranked, out->index);
  }
}

TEST(BuilderTest, WeightedDirectedExact) {
  ErOptions er;
  er.num_vertices = 120;
  er.num_edges = 500;
  er.directed = true;
  er.seed = 3;
  auto edges = GenerateErdosRenyi(er);
  ASSERT_TRUE(edges.ok());
  AssignUniformWeights(&*edges, 1, 7, 5);
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(BuilderTest, HybridSwitchPointsAgree) {
  GlpOptions glp;
  glp.num_vertices = 600;
  glp.seed = 21;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  for (uint32_t switch_at : {1u, 2u, 5u, 10u}) {
    BuildOptions opts;
    opts.mode = BuildMode::kHybrid;
    opts.hybrid_switch_iteration = switch_at;
    auto out = BuildHopLabeling(*ranked, opts);
    ASSERT_TRUE(out.ok()) << "switch at " << switch_at;
    ExpectExact(*ranked, out->index);
  }
}

TEST(BuilderTest, PruneWithCandidatesOffStillExact) {
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 23;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.prune_with_candidates = false;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
  // Weaker witnesses can only give a bigger-or-equal index.
  auto strong = BuildHopLabeling(*ranked, BuildOptions{});
  ASSERT_TRUE(strong.ok());
  EXPECT_GE(out->index.TotalEntries(), strong->index.TotalEntries());
}

TEST(BuilderTest, PruningShrinksScaleFreeIndexMassively) {
  GlpOptions glp;
  glp.num_vertices = 1500;
  glp.seed = 25;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions with, without;
  without.prune = false;
  without.max_iterations = 6;  // unpruned label sets explode; cap work
  auto a = BuildHopLabeling(*ranked, with);
  auto b = BuildHopLabeling(*ranked, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->index.TotalEntries() * 2, b->index.TotalEntries());
}

TEST(BuilderTest, DeadlineAborts) {
  GlpOptions glp;
  glp.num_vertices = 30000;
  glp.target_avg_degree = 8;
  glp.seed = 27;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.time_budget_seconds = 1e-6;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

TEST(BuilderTest, CandidateCapAborts) {
  GlpOptions glp;
  glp.num_vertices = 5000;
  glp.target_avg_degree = 8;
  glp.seed = 29;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.max_candidates_per_iteration = 10;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

TEST(BuilderTest, DeadlineTripsMidGeneration) {
  // A random vertex order on a scale-free graph makes single iterations
  // explode; the deadline must be honored INSIDE candidate generation,
  // not just between phases. Regression test: this used to run for
  // minutes (and gigabytes) past the budget.
  GlpOptions glp;
  glp.num_vertices = 20000;
  glp.target_avg_degree = 8;
  glp.seed = 57;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto base = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(base.ok());
  std::vector<VertexId> order(base->num_vertices());
  Rng rng(4);
  for (VertexId v = 0; v < base->num_vertices(); ++v) order[v] = v;
  for (VertexId i = base->num_vertices(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  auto ranked = RelabelByRank(*base, RankingFromOrder(std::move(order)));
  ASSERT_TRUE(ranked.ok());

  BuildOptions opts;
  opts.time_budget_seconds = 0.3;
  Stopwatch watch;
  auto out = BuildHopLabeling(*ranked, opts);
  const double elapsed = watch.Seconds();
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
  // Generous slack for slow CI, but far below the unbounded-iteration
  // regime this guards against.
  EXPECT_LT(elapsed, 10.0);
}

TEST(BuilderTest, CandidateCapTripsMidGenerationInBoundedMemory) {
  GlpOptions glp;
  glp.num_vertices = 20000;
  glp.target_avg_degree = 8;
  glp.seed = 58;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.max_candidates_per_iteration = 100000;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

TEST(BuilderTest, StatsAreConsistent) {
  GlpOptions glp;
  glp.num_vertices = 800;
  glp.seed = 33;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  const BuildStats& st = out->stats;
  EXPECT_EQ(st.initial_entries, ranked->num_edges());
  EXPECT_EQ(st.iterations.size(), st.num_rule_iterations);
  uint64_t entries = st.initial_entries;
  for (const IterationStats& it : st.iterations) {
    EXPECT_LE(it.deduped_candidates, it.raw_candidates);
    EXPECT_LE(it.existing_dropped + it.pruned, it.deduped_candidates);
    EXPECT_EQ(it.survivors,
              it.deduped_candidates - it.existing_dropped - it.pruned);
    // Entry count grows by survivors minus in-place updates.
    entries += it.survivors - it.updates;
    EXPECT_EQ(it.total_entries_after, entries);
  }
  EXPECT_EQ(entries, out->index.TotalEntries());
}

TEST(BuilderTest, HybridRequiresSwitchIteration) {
  auto ranked = RankedGraph(PathGraph(4));
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHybrid;
  opts.hybrid_switch_iteration = 0;
  EXPECT_FALSE(BuildHopLabeling(*ranked, opts).ok());
}

TEST(BuilderTest, ModeNames) {
  EXPECT_STREQ(BuildModeName(BuildMode::kHopStepping), "Step");
  EXPECT_STREQ(BuildModeName(BuildMode::kHopDoubling), "Double");
  EXPECT_STREQ(BuildModeName(BuildMode::kHybrid), "Hybrid");
}

}  // namespace
}  // namespace hopdb
