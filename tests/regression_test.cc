// Focused scenario tests for behaviours the broader suites reach only
// incidentally: in-place distance updates on weighted graphs, per-pivot
// accounting on directed indexes, dataset-registry loading across all
// groups, and block-file move semantics.

#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/verify.h"
#include "gen/small_graphs.h"
#include "graph/ranking.h"
#include "io/block_file.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"

namespace hopdb {
namespace {

// A weighted triangle where the direct edge 0-1 (weight 9) is beaten by
// the 2-hop path 1-2-0 (weight 2): the initial edge entry (0,9) in L(1)
// must be improved in place during iteration 1 (the builder's update
// path, which unweighted graphs never exercise in stepping mode).
TEST(WeightedUpdateTest, InPlaceDistanceImprovement) {
  EdgeList e(3, /*directed=*/false);
  e.Add(0, 1, 9);
  e.Add(0, 2, 1);
  e.Add(1, 2, 1);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());

  BuildOptions opts;
  opts.mode = BuildMode::kHopStepping;
  auto out = BuildHopLabeling(*g, opts);
  ASSERT_TRUE(out.ok());

  uint64_t updates = 0;
  for (const IterationStats& it : out->stats.iterations) {
    updates += it.updates;
  }
  EXPECT_GE(updates, 1u) << "the (0,9) entry must be improved to (0,2)";
  EXPECT_EQ(LookupPivot(out->index.OutLabel(1), 0), 2u);
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
}

// The same construction through Hop-Doubling: overshooting concatenations
// may enter first and must be corrected by later exact candidates.
TEST(WeightedUpdateTest, DoublingConvergesToExact) {
  EdgeList e(5, /*directed=*/false);
  e.Add(0, 1, 20);
  e.Add(1, 2, 20);
  e.Add(0, 3, 1);
  e.Add(3, 4, 1);
  e.Add(4, 2, 1);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*g, m);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHopDoubling;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
}

TEST(DirectedPivotAccountingTest, EntriesPerPivotCountsBothSides) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto out = BuildHopLabeling(*g, {});
  ASSERT_TRUE(out.ok());
  auto per_pivot = out->index.EntriesPerPivot();
  uint64_t sum = 0;
  for (uint64_t c : per_pivot) sum += c;
  EXPECT_EQ(sum, out->index.TotalEntries());
  // Vertex 0 (top rank) is the most-used pivot in the example.
  for (VertexId v = 1; v < 8; ++v) {
    EXPECT_GE(per_pivot[0], per_pivot[v]);
  }
}

// Every dataset group in the registry loads and matches its spec at tiny
// scale (tier <= 1 keeps this test under a few seconds).
TEST(DatasetRegistryTest, AllTierOneDatasetsLoad) {
  LoadOptions opts;
  opts.scale = 0.01;
  for (const DatasetSpec& spec : Table6Datasets()) {
    if (spec.tier > 1) continue;
    auto g = LoadDataset(spec, opts);
    ASSERT_TRUE(g.ok()) << spec.name;
    EXPECT_EQ(g->directed(), spec.directed) << spec.name;
    EXPECT_EQ(g->weighted(), spec.weighted) << spec.name;
    EXPECT_GT(g->num_edges(), 0u) << spec.name;
  }
}

TEST(BlockFileTest, MoveTransfersOwnership) {
  auto dir = TempDir::Create("regression");
  ASSERT_TRUE(dir.ok());
  auto file = BlockFile::OpenWrite(dir->File("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("abcd", 4).ok());
  BlockFile moved = std::move(*file);
  EXPECT_EQ(moved.size(), 4u);
  char buf[4];
  ASSERT_TRUE(moved.ReadAt(0, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "abcd");
}

// Hybrid mode on a graph whose diameter exceeds the switch point: the
// doubling phase must cover the long tail that stepping left (a path
// graph pushes the worst case).
TEST(HybridLongDiameterTest, DoublingPhaseFinishesLongPaths) {
  auto g = CsrGraph::FromEdgeList(PathGraph(200));
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*g, m);
  ASSERT_TRUE(ranked.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHybrid;
  opts.hybrid_switch_iteration = 5;
  auto out = BuildHopLabeling(*ranked, opts);
  ASSERT_TRUE(out.ok());
  // Stepping alone would need ~199 iterations; the switch to doubling
  // must compress that to ~5 + 2*log2(199/32) + change.
  EXPECT_LT(out->stats.num_rule_iterations, 25u);
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
}

// Self-loops and parallel edges in the input must not corrupt anything
// end to end (Normalize handles them before the builder sees the graph).
TEST(DirtyInputTest, SelfLoopsAndParallelEdges) {
  EdgeList e(4, /*directed=*/true);
  e.Add(0, 0);      // self loop
  e.Add(0, 1, 5);
  e.Add(0, 1, 2);   // parallel, lighter wins
  e.Add(1, 0, 1);
  e.Add(1, 2);
  e.Add(2, 2);      // self loop
  e.Add(2, 3);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kInOutProduct);
  auto ranked = RelabelByRank(*g, m);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
}

}  // namespace
}  // namespace hopdb
