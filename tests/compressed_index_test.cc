// CompressedIndex: exact round trips, query equivalence with the plain
// index, honest size accounting, and clean failures on corrupt files.

#include <gtest/gtest.h>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"
#include "labeling/compressed_index.h"
#include "labeling/query_kernel.h"
#include "util/random.h"
#include "util/serde.h"

namespace hopdb {
namespace {

struct Fixture {
  CsrGraph graph;
  TwoHopIndex index;
};

Fixture BuildFixture(EdgeList edges) {
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();
  auto built = BuildHopLabeling(*ranked);
  built.status().CheckOK();
  return Fixture{std::move(*ranked), std::move(built->index)};
}

void ExpectSameLabels(const TwoHopIndex& a, const TwoHopIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.directed(), b.directed());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ao = a.OutLabel(v);
    const auto bo = b.OutLabel(v);
    ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()))
        << "out label of " << v;
    const auto ai = a.InLabel(v);
    const auto bi = b.InLabel(v);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
        << "in label of " << v;
  }
}

struct CompCase {
  std::string name;
  bool directed;
  bool weighted;
  uint64_t seed;
};

std::string CompCaseName(const ::testing::TestParamInfo<CompCase>& info) {
  return info.param.name + (info.param.directed ? "_dir" : "_und") +
         (info.param.weighted ? "_wgt" : "_unw") + "_s" +
         std::to_string(info.param.seed);
}

class CompressedSweepTest : public ::testing::TestWithParam<CompCase> {};

EdgeList MakeGraph(const CompCase& c) {
  EdgeList edges;
  if (c.name == "glp") {
    GlpOptions glp;
    glp.num_vertices = 150;
    glp.seed = c.seed;
    edges = c.directed ? GenerateDirectedGlp(glp).ValueOrDie()
                       : GenerateGlp(glp).ValueOrDie();
  } else {
    ErOptions er;
    er.num_vertices = 110;
    er.num_edges = 190;
    er.directed = c.directed;
    er.seed = c.seed;
    edges = GenerateErdosRenyi(er).ValueOrDie();
  }
  if (c.weighted) {
    AssignUniformWeights(&edges, 1, 200, DeriveSeed(c.seed, 13));
  }
  return edges;
}

TEST_P(CompressedSweepTest, RoundTripAndQueryEquivalence) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  auto compressed = CompressedIndex::FromIndex(fix.index);
  ASSERT_TRUE(compressed.ok());
  ASSERT_EQ(compressed->num_vertices(), fix.index.num_vertices());
  ASSERT_EQ(compressed->directed(), fix.index.directed());

  // Exact decompression round trip.
  auto restored = compressed->Decompress();
  ASSERT_TRUE(restored.ok());
  ExpectSameLabels(fix.index, *restored);

  // Every pair answers identically to the plain index.
  const VertexId n = fix.index.num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(compressed->Query(s, t), fix.index.Query(s, t))
          << s << "->" << t;
    }
  }
}

TEST_P(CompressedSweepTest, SaveLoadPreservesEverything) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  auto compressed = CompressedIndex::FromIndex(fix.index);
  ASSERT_TRUE(compressed.ok());

  TempDir dir = TempDir::Create("hlc_test").ValueOrDie();
  const std::string path = dir.File("index.hlc");
  ASSERT_TRUE(compressed->Save(path).ok());

  auto loaded = CompressedIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto restored = loaded->Decompress();
  ASSERT_TRUE(restored.ok());
  ExpectSameLabels(fix.index, *restored);
}

INSTANTIATE_TEST_SUITE_P(
    CompressedSweep, CompressedSweepTest,
    ::testing::Values(CompCase{"glp", false, false, 31},
                      CompCase{"glp", true, false, 32},
                      CompCase{"glp", true, true, 33},
                      CompCase{"er", false, false, 34},
                      CompCase{"er", true, true, 35}),
    CompCaseName);

// Satellite: the compressed-stream kernels (which merge the delta-varint
// payloads directly, without a decompression pass) must answer identically
// to decompress-then-query, for EVERY supported kernel on this machine.
TEST(CompressedIndexTest, StreamKernelsMatchDecompressThenQueryOnAllKernels) {
  GlpOptions glp;
  glp.num_vertices = 220;
  glp.seed = 91;
  Fixture fix = BuildFixture(GenerateDirectedGlp(glp).ValueOrDie());
  auto compressed = CompressedIndex::FromIndex(fix.index);
  ASSERT_TRUE(compressed.ok());
  auto restored = compressed->Decompress();
  ASSERT_TRUE(restored.ok());

  const std::string original = ActiveQueryKernel().name;
  const VertexId n = fix.index.num_vertices();
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    ASSERT_TRUE(SetActiveQueryKernel(kernel->name));
    Rng rng(DeriveSeed(91, 7));
    for (int i = 0; i < 4000; ++i) {
      const VertexId s = rng.Below(n);
      const VertexId t = rng.Below(n);
      ASSERT_EQ(compressed->Query(s, t), restored->Query(s, t))
          << kernel->name << " " << s << "->" << t;
    }
    // Degenerate endpoints: s == t and out-of-range ids.
    EXPECT_EQ(compressed->Query(3, 3), 0u) << kernel->name;
    EXPECT_EQ(compressed->Query(n, 0), kInfDistance) << kernel->name;
    EXPECT_EQ(compressed->Query(0, n + 5), kInfDistance) << kernel->name;
  }
  ASSERT_TRUE(SetActiveQueryKernel(original));
}

TEST(CompressedIndexTest, CompressesBelowPaperAccountingOnUnweighted) {
  GlpOptions glp;
  glp.num_vertices = 600;
  glp.seed = 41;
  Fixture fix = BuildFixture(GenerateGlp(glp).ValueOrDie());
  auto compressed = CompressedIndex::FromIndex(fix.index);
  ASSERT_TRUE(compressed.ok());
  // Delta-varint beats both the in-memory form (8 B/entry) and the
  // paper's disk accounting (5 B/entry + offsets) on scale-free labels.
  EXPECT_LT(compressed->SizeBytes(), fix.index.SizeBytes());
  EXPECT_LT(compressed->SizeBytes(), fix.index.PaperSizeBytes());
}

TEST(CompressedIndexTest, EmptyIndexIsRejected) {
  TwoHopIndex empty;
  auto r = CompressedIndex::FromIndex(empty);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompressedIndexTest, LoadRejectsMissingFile) {
  auto r = CompressedIndex::Load("/nonexistent/path/index.hlc");
  ASSERT_FALSE(r.ok());
}

class CompressedCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir::Create("hlc_corrupt").ValueOrDie();
    Fixture fix = BuildFixture(PaperExampleGraph());
    auto compressed = CompressedIndex::FromIndex(fix.index);
    ASSERT_TRUE(compressed.ok());
    path_ = dir_.File("index.hlc");
    ASSERT_TRUE(compressed->Save(path_).ok());
    ASSERT_TRUE(ReadFileToString(path_, &blob_).ok());
  }

  TempDir dir_;
  std::string path_;
  std::string blob_;
};

TEST_F(CompressedCorruptionTest, FlippedByteFailsChecksum) {
  // Flip one byte in the middle; the checksum must catch it.
  std::string corrupt = blob_;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  const std::string p = dir_.File("corrupt.hlc");
  ASSERT_TRUE(WriteStringToFile(p, corrupt).ok());
  auto r = CompressedIndex::Load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST_F(CompressedCorruptionTest, TruncationFailsCleanly) {
  for (const size_t keep : {size_t{0}, size_t{8}, blob_.size() / 2,
                            blob_.size() - 1}) {
    const std::string p = dir_.File("trunc.hlc");
    ASSERT_TRUE(WriteStringToFile(p, blob_.substr(0, keep)).ok());
    auto r = CompressedIndex::Load(p);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(CompressedCorruptionTest, BadMagicIsRejected) {
  std::string corrupt = blob_;
  corrupt[0] = 'X';
  // Re-stamp the checksum so only the magic check can fail.
  const uint64_t sum = Fnv1a64(corrupt.data(), corrupt.size() - 8);
  corrupt.resize(corrupt.size() - 8);
  PutU64(&corrupt, sum);
  const std::string p = dir_.File("magic.hlc");
  ASSERT_TRUE(WriteStringToFile(p, corrupt).ok());
  auto r = CompressedIndex::Load(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

// --- varint / checksum primitives (serde additions) ---

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (const uint64_t v : std::vector<uint64_t>{
           0, 1, 127, 128, 129, 16383, 16384, (uint64_t{1} << 32) - 1,
           uint64_t{1} << 32, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(reinterpret_cast<const uint8_t*>(buf.data()),
                            buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, EncodingLengthMatchesMagnitude) {
  std::string one, two, ten;
  PutVarint64(&one, 127);
  PutVarint64(&two, 128);
  PutVarint64(&ten, UINT64_MAX);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  for (size_t keep = 0; keep + 1 < buf.size(); ++keep) {
    size_t pos = 0;
    uint64_t v;
    EXPECT_FALSE(GetVarint64(reinterpret_cast<const uint8_t*>(buf.data()),
                             keep, &pos, &v));
  }
}

TEST(VarintTest, RandomRoundTripStream) {
  Rng rng(77);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 2000; ++i) {
    // Skew small: label deltas and distances are mostly tiny.
    const uint64_t v = rng.Next64() >> (rng.Below(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  size_t pos = 0;
  for (const uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(reinterpret_cast<const uint8_t*>(buf.data()),
                            buf.size(), &pos, &v));
    ASSERT_EQ(v, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Fnv1aTest, KnownVectorsAndSensitivity) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abd", 3));
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abc", 2));
}

}  // namespace
}  // namespace hopdb
