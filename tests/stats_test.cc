#include "graph/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/glp.h"
#include "gen/small_graphs.h"

namespace hopdb {
namespace {

TEST(StatsTest, PathGraphDiameter) {
  auto g = CsrGraph::FromEdgeList(PathGraph(10));
  ASSERT_TRUE(g.ok());
  GraphStatsOptions opt;
  opt.sample_sources = 10;  // exhaustive
  GraphStats s = ComputeGraphStats(*g, opt);
  EXPECT_EQ(s.estimated_hop_diameter, 9u);
  EXPECT_EQ(s.max_degree, 2u);
}

TEST(StatsTest, StarGraphExpansion) {
  auto g = CsrGraph::FromEdgeList(StarGraph(20));
  ASSERT_TRUE(g.ok());
  GraphStatsOptions opt;
  opt.sample_sources = 21;
  GraphStats s = ComputeGraphStats(*g, opt);
  EXPECT_EQ(s.estimated_hop_diameter, 2u);
  EXPECT_EQ(s.max_degree, 20u);
  // From a leaf: z1 = 1 (the hub), z2 = 19 (other leaves).
  EXPECT_GT(s.z2, s.z1);
}

TEST(StatsTest, DegreeHistogram) {
  auto g = CsrGraph::FromEdgeList(StarGraph(5));
  ASSERT_TRUE(g.ok());
  auto hist = DegreeHistogram(*g);
  ASSERT_EQ(hist.size(), 6u);
  EXPECT_EQ(hist[1], 5u);  // leaves
  EXPECT_EQ(hist[5], 1u);  // hub
}

TEST(StatsTest, GlpLooksScaleFree) {
  GlpOptions opt;
  opt.num_vertices = 20000;
  opt.seed = 42;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  // Power-law degree sequence: the rank exponent is clearly negative and
  // in the broad vicinity of the paper's -0.7..-0.8 window.
  EXPECT_LT(s.rank_exponent, -0.4);
  EXPECT_GT(s.rank_exponent, -1.6);
  // Small-world: diameter within a few multiples of log |V|.
  EXPECT_LT(s.estimated_hop_diameter, 30u);
  // Hubs exist.
  EXPECT_GT(s.max_degree, 100u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, ExpansionFactorNearLogV) {
  GlpOptions opt;
  opt.num_vertices = 30000;
  opt.target_avg_degree = 8;
  opt.seed = 5;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  // Section 2.2 predicts R = z2/z1 ≈ log|V| asymptotically; on concrete
  // GLP graphs hub-dominated 2-hop balls push R well above that, so only
  // sanity-check the envelope: clearly expanding, clearly sub-|V|.
  EXPECT_GT(s.expansion_factor, 2.0);
  EXPECT_LT(s.expansion_factor, static_cast<double>(s.num_vertices));
}

TEST(StatsTest, EmptyGraph) {
  EdgeList e(0, false);
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  GraphStats s = ComputeGraphStats(*g);
  EXPECT_EQ(s.num_vertices, 0u);
}

}  // namespace
}  // namespace hopdb
