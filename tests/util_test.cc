#include <gtest/gtest.h>

#include <set>

#include "util/cli.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

TEST(RandomTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RandomTest, BelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformInclusive) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Uniform(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DeriveSeedDecorrelates) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed(5, 3), DeriveSeed(5, 3));
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(5300), "5.30K");
  EXPECT_EQ(HumanCount(5300000), "5.30M");
  EXPECT_EQ(HumanCount(168000000000ull), "168G");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(9ull << 30), "9.00 GB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(0.0000012), "1us");
  EXPECT_EQ(HumanDuration(0.0123), "12.3ms");
  EXPECT_EQ(HumanDuration(4.5), "4.50s");
  EXPECT_EQ(HumanDuration(125), "2m05s");
}

TEST(StringUtilTest, SplitAndTrim) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  auto keep = SplitString("a,,b", ',', /*skip_empty=*/false);
  EXPECT_EQ(keep.size(), 3u);
  EXPECT_EQ(TrimString("  x y \t\n"), "x y");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));  // overflow
}

TEST(StringUtilTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("2.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch w;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GT(w.Seconds(), 0.0);
  EXPECT_GT(w.Micros(), w.Millis());
}

TEST(TimerTest, DeadlineDisabled) {
  Deadline d(0);
  EXPECT_FALSE(d.enabled());
  EXPECT_FALSE(d.Exceeded());
  EXPECT_GT(d.RemainingSeconds(), 1e10);
}

TEST(TimerTest, DeadlineExceeds) {
  Deadline d(1e-9);
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_TRUE(d.enabled());
  EXPECT_TRUE(d.Exceeded());
}

TEST(CliTest, ParsesFlagsAndPositional) {
  CliFlags flags;
  flags.Define("scale", "1.0", "scale factor");
  flags.Define("full", "false", "run everything");
  flags.Define("name", "x", "a name");
  const char* argv[] = {"prog", "--scale=2.5", "--full", "--name", "enron",
                        "pos1"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 2.5);
  EXPECT_TRUE(flags.GetBool("full"));
  EXPECT_EQ(flags.GetString("name"), "enron");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(CliTest, UnknownFlagFails) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(CliTest, HelpRequested) {
  CliFlags flags;
  flags.Define("x", "1", "a flag");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage("test").find("--x"), std::string::npos);
}

TEST(CliTest, DefaultsApply) {
  CliFlags flags;
  flags.Define("n", "42", "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_EQ(flags.GetUint("n"), 42u);
}

}  // namespace
}  // namespace hopdb
