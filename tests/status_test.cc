#include "util/status.h"

#include <gtest/gtest.h>

namespace hopdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::OK().IsDeadlineExceeded());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::OutOfRange("boom"); }

Status Propagates() {
  HOPDB_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

Result<int> MakeValue(bool ok) {
  if (!ok) return Status::Internal("bad");
  return 7;
}

Status UsesAssignOrReturn(bool ok, int* out) {
  HOPDB_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UsesAssignOrReturn(false, &out).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hopdb
