// Scalar-vs-SIMD agreement for the query kernels: every kernel the CPU
// supports must return bit-identical distances on randomized labels —
// including the kInfDistance saturation corner when d1 + d2 overflows
// uint32 — and the flat query path must match the span-based reference.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "labeling/flat_label_store.h"
#include "labeling/label_entry.h"
#include "labeling/query_kernel.h"
#include "labeling/two_hop_index.h"
#include "util/random.h"

namespace hopdb {
namespace {

LabelVector RandomLabel(Rng* rng, VertexId pivot_space, size_t max_len,
                        Distance max_dist) {
  std::map<VertexId, Distance> entries;
  const size_t len = rng->Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    const VertexId pivot = static_cast<VertexId>(rng->Below(pivot_space));
    const Distance dist = static_cast<Distance>(rng->Uniform(1, max_dist));
    entries.emplace(pivot, dist);
  }
  LabelVector out;
  for (auto [p, d] : entries) out.push_back({p, d});
  return out;
}

/// SoA copy of a label for direct intersect_flat calls.
struct SoaLabel {
  std::vector<uint32_t> pivots;
  std::vector<uint32_t> dists;

  explicit SoaLabel(const LabelVector& label) {
    for (const LabelEntry& e : label) {
      pivots.push_back(e.pivot);
      dists.push_back(e.dist);
    }
  }
};

Distance BruteIntersect(const LabelVector& a, const LabelVector& b) {
  Distance best = kInfDistance;
  for (const LabelEntry& ea : a) {
    for (const LabelEntry& eb : b) {
      if (ea.pivot == eb.pivot) {
        best = std::min(best, SaturatingAdd(ea.dist, eb.dist));
      }
    }
  }
  return best;
}

void ExpectAllKernelsAgree(const LabelVector& a, const LabelVector& b,
                           const std::string& context) {
  const Distance want = BruteIntersect(a, b);
  const SoaLabel sa(a), sb(b);
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    EXPECT_EQ(kernel->intersect_flat(
                  sa.pivots.data(), sa.dists.data(),
                  static_cast<uint32_t>(sa.pivots.size()), sb.pivots.data(),
                  sb.dists.data(), static_cast<uint32_t>(sb.pivots.size())),
              want)
        << context << " intersect_flat kernel=" << kernel->name;
    EXPECT_EQ(kernel->intersect_entries(a.data(),
                                        static_cast<uint32_t>(a.size()),
                                        b.data(),
                                        static_cast<uint32_t>(b.size())),
              want)
        << context << " intersect_entries kernel=" << kernel->name;
  }
}

TEST(QueryKernelTest, ScalarKernelIsAlwaysFirst) {
  const auto kernels = SupportedQueryKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels[0]->name, "scalar");
}

TEST(QueryKernelTest, FindAndSetByName) {
  EXPECT_EQ(FindQueryKernel("no-such-kernel"), nullptr);
  EXPECT_FALSE(SetActiveQueryKernel("no-such-kernel"));
  const std::string before = ActiveQueryKernel().name;
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    ASSERT_NE(FindQueryKernel(kernel->name), nullptr);
    ASSERT_TRUE(SetActiveQueryKernel(kernel->name));
    EXPECT_STREQ(ActiveQueryKernel().name, kernel->name);
  }
  ASSERT_TRUE(SetActiveQueryKernel(before));
}

TEST(QueryKernelTest, EmptyAndDegenerateInputs) {
  const LabelVector empty;
  const LabelVector one{{3, 5}};
  const LabelVector other{{3, 7}, {9, 1}};
  ExpectAllKernelsAgree(empty, empty, "empty/empty");
  ExpectAllKernelsAgree(empty, other, "empty/other");
  ExpectAllKernelsAgree(one, other, "one/other");
  ExpectAllKernelsAgree(one, one, "one/one");
}

TEST(QueryKernelTest, RandomizedAgreementAcrossSizes) {
  Rng rng(42);
  // Mixed sizes straddling the 4- and 8-lane block boundaries, plus
  // skewed big-vs-small pairings that exercise the advance logic.
  const size_t sizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 200};
  for (const size_t la : sizes) {
    for (const size_t lb : sizes) {
      for (int round = 0; round < 8; ++round) {
        // Small pivot space forces plenty of matches.
        LabelVector a = RandomLabel(&rng, 96, la, 50);
        LabelVector b = RandomLabel(&rng, 96, lb, 50);
        ExpectAllKernelsAgree(a, b, "sizes " + std::to_string(la) + "x" +
                                        std::to_string(lb) + " round " +
                                        std::to_string(round));
      }
    }
  }
}

TEST(QueryKernelTest, SaturatingOverflowAgreement) {
  // d1 + d2 wrapping uint32 must saturate to kInfDistance in every
  // kernel, and an overflowed match must not shadow a later real one.
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    LabelVector a = RandomLabel(&rng, 64, 24, kInfDistance - 1);
    LabelVector b = RandomLabel(&rng, 64, 24, kInfDistance - 1);
    // Mix in a few small distances so some sums stay finite.
    for (LabelEntry& e : a) {
      if (rng.Below(3) == 0) e.dist = static_cast<Distance>(rng.Uniform(1, 9));
    }
    for (LabelEntry& e : b) {
      if (rng.Below(3) == 0) e.dist = static_cast<Distance>(rng.Uniform(1, 9));
    }
    ExpectAllKernelsAgree(a, b, "overflow round " + std::to_string(round));
  }
}

TEST(QueryKernelTest, FlatHalvesMatchSpanHalves) {
  Rng rng(1234);
  const VertexId nv = 40;
  for (int round = 0; round < 30; ++round) {
    std::vector<LabelVector> out(nv), in(nv);
    for (VertexId v = 0; v < nv; ++v) {
      out[v] = RandomLabel(&rng, nv, 12, 50);
      in[v] = RandomLabel(&rng, nv, 12, 50);
    }
    const FlatLabelStore store = FlatLabelStore::Build(out, in, true);
    for (const QueryKernel* kernel : SupportedQueryKernels()) {
      for (int q = 0; q < 50; ++q) {
        const VertexId s = static_cast<VertexId>(rng.Below(nv));
        const VertexId t = static_cast<VertexId>(rng.Below(nv));
        EXPECT_EQ(QueryFlatHalves(store.Out(s), store.In(t), s, t, *kernel),
                  QueryLabelHalves(out[s], in[t], s, t))
            << "kernel=" << kernel->name << " s=" << s << " t=" << t;
      }
    }
  }
}

// --- Bounded early-exit witness probe (builder rule-(ii) pruning) ---

bool BruteWitness(const LabelVector& a, const LabelVector& b, VertexId beta,
                  Distance d) {
  for (const LabelEntry& ea : a) {
    for (const LabelEntry& eb : b) {
      if (ea.pivot == eb.pivot && ea.pivot < beta &&
          SaturatingAdd(ea.dist, eb.dist) <= d) {
        return true;
      }
    }
  }
  return false;
}

void ExpectAllWitnessKernelsAgree(const LabelVector& a, const LabelVector& b,
                                  VertexId beta, Distance d,
                                  const std::string& context) {
  const bool want = BruteWitness(a, b, beta, d);
  const SoaLabel sa(a), sb(b);
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    EXPECT_EQ(kernel->has_witness_flat(
                  sa.pivots.data(), sa.dists.data(),
                  static_cast<uint32_t>(sa.pivots.size()), sb.pivots.data(),
                  sb.dists.data(), static_cast<uint32_t>(sb.pivots.size()),
                  beta, d),
              want)
        << context << " has_witness_flat kernel=" << kernel->name
        << " beta=" << beta << " d=" << d;
  }
}

TEST(QueryKernelTest, WitnessAgreementOnRandomizedSnapshots) {
  Rng rng(2718);
  // Sizes straddle the SIMD block boundaries; betas sweep below, inside
  // and above the pivot space so the bound cuts prefixes of every length.
  const size_t sizes[] = {0, 1, 3, 7, 8, 9, 16, 17, 33, 64, 200};
  for (const size_t la : sizes) {
    for (const size_t lb : sizes) {
      for (int round = 0; round < 4; ++round) {
        LabelVector a = RandomLabel(&rng, 96, la, 50);
        LabelVector b = RandomLabel(&rng, 96, lb, 50);
        for (const VertexId beta : {VertexId{0}, VertexId{1}, VertexId{13},
                                    VertexId{48}, VertexId{96},
                                    VertexId{1000}}) {
          const Distance d = static_cast<Distance>(rng.Uniform(0, 110));
          ExpectAllWitnessKernelsAgree(
              a, b, beta, d,
              "sizes " + std::to_string(la) + "x" + std::to_string(lb) +
                  " round " + std::to_string(round));
        }
      }
    }
  }
}

TEST(QueryKernelTest, WitnessOverflowSaturatesIntoInfiniteBudget) {
  // When the candidate distance is kInfDistance, a pair whose d1 + d2
  // wraps uint32 saturates to kInfDistance and IS a witness; for any
  // finite budget it is not. Every kernel must agree on both.
  Rng rng(31);
  for (int round = 0; round < 200; ++round) {
    LabelVector a = RandomLabel(&rng, 64, 24, kInfDistance - 1);
    LabelVector b = RandomLabel(&rng, 64, 24, kInfDistance - 1);
    for (LabelEntry& e : a) {
      if (rng.Below(3) == 0) e.dist = static_cast<Distance>(rng.Uniform(1, 9));
    }
    for (LabelEntry& e : b) {
      if (rng.Below(3) == 0) e.dist = static_cast<Distance>(rng.Uniform(1, 9));
    }
    const std::string context = "overflow round " + std::to_string(round);
    ExpectAllWitnessKernelsAgree(a, b, /*beta=*/64, kInfDistance, context);
    ExpectAllWitnessKernelsAgree(a, b, /*beta=*/64, kInfDistance - 1,
                                 context);
    ExpectAllWitnessKernelsAgree(
        a, b, /*beta=*/64, static_cast<Distance>(rng.Uniform(0, 50)),
        context);
  }
}

TEST(QueryKernelTest, WitnessBetaZeroIsNeverFound) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    LabelVector a = RandomLabel(&rng, 32, 40, 9);
    for (const QueryKernel* kernel : SupportedQueryKernels()) {
      const SoaLabel sa(a);
      EXPECT_FALSE(kernel->has_witness_flat(
          sa.pivots.data(), sa.dists.data(),
          static_cast<uint32_t>(sa.pivots.size()), sa.pivots.data(),
          sa.dists.data(), static_cast<uint32_t>(sa.pivots.size()),
          /*beta=*/0, kInfDistance))
          << kernel->name;
    }
  }
}

TEST(QueryKernelTest, LookupPivotFlatMatchesSpanLookup) {
  Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    const LabelVector label = RandomLabel(&rng, 80, 30, 50);
    const FlatLabelStore store =
        FlatLabelStore::Build({label}, {}, /*directed=*/false);
    for (VertexId probe = 0; probe < 85; ++probe) {
      EXPECT_EQ(LookupPivotFlat(store.Out(0), probe),
                LookupPivot(label, probe))
          << "round " << round << " probe " << probe;
    }
  }
}

}  // namespace
}  // namespace hopdb
