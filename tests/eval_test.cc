#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/table.h"
#include "eval/verify.h"
#include "eval/workload.h"
#include "gen/small_graphs.h"
#include "graph/graph_io.h"
#include "io/temp_dir.h"
#include "search/bfs.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

TEST(DatasetsTest, RegistryCoversPaperTable) {
  const auto& all = Table6Datasets();
  EXPECT_EQ(all.size(), 27u);  // every row of Table 6
  int undirected = 0, directed = 0, weighted = 0, synthetic = 0;
  for (const auto& spec : all) {
    if (spec.group == "synthetic") ++synthetic;
    if (spec.weighted) ++weighted;
    (spec.directed ? directed : undirected)++;
    EXPECT_GT(spec.sim_vertices, 0u);
    EXPECT_GT(spec.sim_avg_degree, 0.0);
  }
  EXPECT_EQ(directed, 9);
  EXPECT_EQ(weighted, 4);
  EXPECT_EQ(synthetic, 6);
}

TEST(DatasetsTest, FindByName) {
  EXPECT_NE(FindDataset("Enron"), nullptr);
  EXPECT_NE(FindDataset("slashdot"), nullptr);
  EXPECT_EQ(FindDataset("notagraph"), nullptr);
}

TEST(DatasetsTest, Tier0IsSmallEnoughForCi) {
  for (const auto& spec : Table6Datasets()) {
    if (spec.tier == 0) {
      EXPECT_LE(static_cast<uint64_t>(spec.sim_vertices) *
                    static_cast<uint64_t>(spec.sim_avg_degree),
                3000000u)
          << spec.name;
    }
  }
}

TEST(DatasetsTest, LoadScaledStandIn) {
  const DatasetSpec* spec = FindDataset("Enron");
  ASSERT_NE(spec, nullptr);
  LoadOptions opts;
  opts.scale = 0.05;  // ~1.9K vertices
  auto g = LoadDataset(*spec, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->num_vertices(), 1000u);
  EXPECT_LT(g->num_vertices(), 4000u);
  EXPECT_FALSE(g->directed());
}

TEST(DatasetsTest, DirectedAndWeightedStandIns) {
  LoadOptions opts;
  opts.scale = 0.02;
  auto slashdot = LoadDataset(*FindDataset("slashdot"), opts);
  ASSERT_TRUE(slashdot.ok());
  EXPECT_TRUE(slashdot->directed());
  auto ratings = LoadDataset(*FindDataset("bookRating"), opts);
  ASSERT_TRUE(ratings.ok());
  EXPECT_TRUE(ratings->weighted());
  EXPECT_FALSE(ratings->directed());
}

TEST(DatasetsTest, RealFileOverridesGenerator) {
  auto dir = TempDir::Create("datasets");
  ASSERT_TRUE(dir.ok());
  // Drop a tiny real file named like a registry dataset.
  EdgeList tiny = PathGraph(5);
  ASSERT_TRUE(WriteTextEdgeList(tiny, dir->File("Enron.txt")).ok());
  LoadOptions opts;
  opts.data_dir = dir->path();
  auto g = LoadDataset(*FindDataset("Enron"), opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 5u);
}

TEST(WorkloadTest, RandomPairsDeterministic) {
  auto a = RandomPairs(100, 50, 7);
  auto b = RandomPairs(100, 50, 7);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_LT(a[i].s, 100u);
    EXPECT_LT(a[i].t, 100u);
  }
}

TEST(WorkloadTest, TimeQueriesAggregates) {
  auto pairs = RandomPairs(10, 1000, 3);
  uint64_t calls = 0;
  QueryTiming timing = TimeQueries(pairs, [&](VertexId s, VertexId t) {
    ++calls;
    return static_cast<Distance>(s + t);
  });
  EXPECT_EQ(calls, 1000u);
  EXPECT_EQ(timing.queries, 1000u);
  EXPECT_GT(timing.checksum, 0u);
  EXPECT_GE(timing.total_seconds, 0.0);
}

TEST(TableTest, RendersAligned) {
  AsciiTable table({"name", "value", "time"});
  table.AddRow({"alpha", "1", "2.0s"});
  table.AddRow({"b", "12345", AsciiTable::Dash()});
  std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("—"), std::string::npos);
  // All lines equally wide (the dash is one display column).
  auto lines = SplitString(out, '\n');
  ASSERT_GE(lines.size(), 4u);
}

TEST(VerifyTest, AcceptsExactOracle) {
  auto g = CsrGraph::FromEdgeList(GridGraph(4, 4));
  ASSERT_TRUE(g.ok());
  BfsRunner runner(*g);
  Status st = VerifyExactDistances(*g, [&](VertexId s, VertexId t) {
    runner.Run(s);
    return runner.DistanceTo(t);
  });
  EXPECT_TRUE(st.ok());
}

TEST(VerifyTest, CatchesWrongOracle) {
  auto g = CsrGraph::FromEdgeList(GridGraph(4, 4));
  ASSERT_TRUE(g.ok());
  Status st = VerifyExactDistances(
      *g, [&](VertexId, VertexId) -> Distance { return 1; });
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace hopdb
