#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "eval/verify.h"
#include "eval/workload.h"
#include "gen/small_graphs.h"
#include "graph/graph_io.h"
#include "io/temp_dir.h"
#include "search/bfs.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

TEST(DatasetsTest, RegistryCoversPaperTable) {
  const auto& all = Table6Datasets();
  EXPECT_EQ(all.size(), 27u);  // every row of Table 6
  int undirected = 0, directed = 0, weighted = 0, synthetic = 0;
  for (const auto& spec : all) {
    if (spec.group == "synthetic") ++synthetic;
    if (spec.weighted) ++weighted;
    (spec.directed ? directed : undirected)++;
    EXPECT_GT(spec.sim_vertices, 0u);
    EXPECT_GT(spec.sim_avg_degree, 0.0);
  }
  EXPECT_EQ(directed, 9);
  EXPECT_EQ(weighted, 4);
  EXPECT_EQ(synthetic, 6);
}

TEST(DatasetsTest, FindByName) {
  EXPECT_NE(FindDataset("Enron"), nullptr);
  EXPECT_NE(FindDataset("slashdot"), nullptr);
  EXPECT_EQ(FindDataset("notagraph"), nullptr);
}

TEST(DatasetsTest, Tier0IsSmallEnoughForCi) {
  for (const auto& spec : Table6Datasets()) {
    if (spec.tier == 0) {
      EXPECT_LE(static_cast<uint64_t>(spec.sim_vertices) *
                    static_cast<uint64_t>(spec.sim_avg_degree),
                3000000u)
          << spec.name;
    }
  }
}

TEST(DatasetsTest, LoadScaledStandIn) {
  const DatasetSpec* spec = FindDataset("Enron");
  ASSERT_NE(spec, nullptr);
  LoadOptions opts;
  opts.scale = 0.05;  // ~1.9K vertices
  auto g = LoadDataset(*spec, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->num_vertices(), 1000u);
  EXPECT_LT(g->num_vertices(), 4000u);
  EXPECT_FALSE(g->directed());
}

TEST(DatasetsTest, DirectedAndWeightedStandIns) {
  LoadOptions opts;
  opts.scale = 0.02;
  auto slashdot = LoadDataset(*FindDataset("slashdot"), opts);
  ASSERT_TRUE(slashdot.ok());
  EXPECT_TRUE(slashdot->directed());
  auto ratings = LoadDataset(*FindDataset("bookRating"), opts);
  ASSERT_TRUE(ratings.ok());
  EXPECT_TRUE(ratings->weighted());
  EXPECT_FALSE(ratings->directed());
}

TEST(DatasetsTest, RealFileOverridesGenerator) {
  auto dir = TempDir::Create("datasets");
  ASSERT_TRUE(dir.ok());
  // Drop a tiny real file named like a registry dataset.
  EdgeList tiny = PathGraph(5);
  ASSERT_TRUE(WriteTextEdgeList(tiny, dir->File("Enron.txt")).ok());
  LoadOptions opts;
  opts.data_dir = dir->path();
  auto g = LoadDataset(*FindDataset("Enron"), opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 5u);
}

TEST(WorkloadTest, RandomPairsDeterministic) {
  auto a = RandomPairs(100, 50, 7);
  auto b = RandomPairs(100, 50, 7);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_LT(a[i].s, 100u);
    EXPECT_LT(a[i].t, 100u);
  }
}

TEST(WorkloadTest, TimeQueriesAggregates) {
  auto pairs = RandomPairs(10, 1000, 3);
  uint64_t calls = 0;
  QueryTiming timing = TimeQueries(pairs, [&](VertexId s, VertexId t) {
    ++calls;
    return static_cast<Distance>(s + t);
  });
  EXPECT_EQ(calls, 1000u);
  EXPECT_EQ(timing.queries, 1000u);
  EXPECT_GT(timing.checksum, 0u);
  EXPECT_GE(timing.total_seconds, 0.0);
}

TEST(TableTest, RendersAligned) {
  AsciiTable table({"name", "value", "time"});
  table.AddRow({"alpha", "1", "2.0s"});
  table.AddRow({"b", "12345", AsciiTable::Dash()});
  std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("—"), std::string::npos);
  // All lines equally wide (the dash is one display column).
  auto lines = SplitString(out, '\n');
  ASSERT_GE(lines.size(), 4u);
}

TEST(VerifyTest, AcceptsExactOracle) {
  auto g = CsrGraph::FromEdgeList(GridGraph(4, 4));
  ASSERT_TRUE(g.ok());
  BfsRunner runner(*g);
  Status st = VerifyExactDistances(*g, [&](VertexId s, VertexId t) {
    runner.Run(s);
    return runner.DistanceTo(t);
  });
  EXPECT_TRUE(st.ok());
}

TEST(VerifyTest, CatchesWrongOracle) {
  auto g = CsrGraph::FromEdgeList(GridGraph(4, 4));
  ASSERT_TRUE(g.ok());
  Status st = VerifyExactDistances(
      *g, [&](VertexId, VertexId) -> Distance { return 1; });
  EXPECT_FALSE(st.ok());
}

// ---------------------------------------------------------------------------
// Eval harness: spec parser + an end-to-end micro run
// ---------------------------------------------------------------------------

TEST(EvalSpecTest, ParsesFullGrammar) {
  auto spec = ParseEvalSpec(
      "# comment line\n"
      "dataset Enron scale=0.5   # trailing comment\n"
      "graph n=500 avg-degree=6 directed=1 weighted=true seed=42\n"
      "variants heap,blocked\n"
      "queries 128 seed=9\n"
      "workload dist\n"
      "workload batch size=8\n"
      "workload knn k=4\n"
      "workload within radius=2\n"
      "workload reach bound=5\n"
      "workload path\n"
      "verify 2\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->datasets.size(), 2u);
  EXPECT_EQ(spec->datasets[0].name, "Enron");
  EXPECT_DOUBLE_EQ(spec->datasets[0].scale, 0.5);
  EXPECT_FALSE(spec->datasets[0].ad_hoc);
  EXPECT_TRUE(spec->datasets[1].ad_hoc);
  EXPECT_EQ(spec->datasets[1].n, 500u);
  EXPECT_TRUE(spec->datasets[1].directed);
  EXPECT_TRUE(spec->datasets[1].weighted);
  EXPECT_EQ(spec->datasets[1].seed, 42u);
  EXPECT_EQ(spec->variants,
            (std::vector<std::string>{"heap", "blocked"}));
  EXPECT_EQ(spec->num_queries, 128u);
  EXPECT_EQ(spec->query_seed, 9u);
  ASSERT_EQ(spec->workloads.size(), 6u);
  EXPECT_EQ(spec->workloads[1].batch_size, 8u);
  EXPECT_EQ(spec->workloads[2].k, 4u);
  EXPECT_EQ(spec->workloads[3].radius, 2u);
  EXPECT_EQ(spec->workloads[4].bound, 5u);
  EXPECT_EQ(spec->verify_sources, 2u);
}

TEST(EvalSpecTest, DefaultsFillWorkloads) {
  auto spec = ParseEvalSpec("graph n=100\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  // No workload lines: every workload kind runs.
  EXPECT_EQ(spec->workloads.size(), 6u);
  EXPECT_TRUE(spec->variants.empty());  // empty == all variants
}

TEST(EvalSpecTest, RejectsMalformedWithLineNumbers) {
  // Every rejection is client-safe InvalidArgument naming the line.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"dataset notagraph\n", "line 1"},
      {"graph n=0\n", "line 1"},
      {"graph n=abc\n", "line 1"},
      {"# ok\nvariants heap,nosuch\n", "line 2"},
      {"graph n=10\nworkload sideways\n", "line 2"},
      {"graph n=10\nworkload dist radius=z\n", "line 2"},
      {"graph n=10\nqueries\n", "line 2"},
      {"graph n=10\nverify 1 2\n", "line 2"},
      {"teleport now\n", "line 1"},
      {"graph n=99999999999\n", "line 1"},  // over the vertex cap
      {"", "no datasets"},
  };
  for (const auto& [text, needle] : cases) {
    auto spec = ParseEvalSpec(text);
    ASSERT_FALSE(spec.ok()) << "accepted: " << text;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(spec.status().ToString().find(needle), std::string::npos)
        << spec.status() << " should mention '" << needle << "'";
  }
}

TEST(EvalSpecTest, DefaultSpecTextsParse) {
  for (const bool ci : {false, true}) {
    auto spec = ParseEvalSpec(DefaultEvalSpecText(ci));
    ASSERT_TRUE(spec.ok()) << spec.status();
    EXPECT_EQ(spec->datasets.size(), 4u);  // the 4 graph-family corners
    EXPECT_EQ(spec->workloads.size(), 6u);
    EXPECT_GT(spec->verify_sources, 0u);
  }
}

TEST(EvalHarnessTest, MicroRunProducesPassingReport) {
  auto tmp = TempDir::Create("eval_harness");
  ASSERT_TRUE(tmp.ok());
  auto spec = ParseEvalSpec(
      "graph n=200 avg-degree=5 seed=3\n"
      "graph n=150 avg-degree=4 directed=1 weighted=1 seed=4\n"
      "queries 64 seed=5\n"
      "verify 2\n");
  ASSERT_TRUE(spec.ok()) << spec.status();

  EvalOptions options;
  options.work_dir = tmp->File("work");
  auto report = RunEval(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();

  // Two datasets, each with every (workload x variant) row; checksum
  // agreement and oracle verification must both hold.
  ASSERT_EQ(report->datasets.size(), 2u);
  for (const EvalDatasetResult& d : report->datasets) {
    EXPECT_EQ(d.verify, "pass");
    EXPECT_GT(d.label_entries, 0u);
    EXPECT_EQ(d.workloads.size(), 6u * 4u);
  }
  EXPECT_TRUE(report->AllPass());

  // Both renderings carry every section / expectation.
  const std::string md = RenderEvalMarkdown(*report);
  for (const char* section : kEvalReportSections) {
    EXPECT_NE(md.find(section), std::string::npos) << section;
  }
  const std::string json = RenderEvalJson(*report);
  EXPECT_NE(json.find("\"all_pass\": true"), std::string::npos);
  EXPECT_NE(json.find("\"variant\": \"compressed\""), std::string::npos);
}

TEST(EvalHarnessTest, VariantSubsetSkipsOthers) {
  auto tmp = TempDir::Create("eval_subset");
  ASSERT_TRUE(tmp.ok());
  auto spec = ParseEvalSpec(
      "graph n=120 avg-degree=4 seed=6\n"
      "variants heap\n"
      "queries 32\n"
      "workload dist\n"
      "verify 0\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EvalOptions options;
  options.work_dir = tmp->File("work");
  auto report = RunEval(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->datasets.size(), 1u);
  ASSERT_EQ(report->datasets[0].workloads.size(), 1u);
  EXPECT_EQ(report->datasets[0].workloads[0].variant, "heap");
  EXPECT_EQ(report->datasets[0].verify, "skipped");
}

}  // namespace
}  // namespace hopdb
