// Fuzz target for the HLI2 mapped-index loader: arbitrary bytes are
// written to a scratch file and handed to MappedIndex::Open with full
// arena verification. Properties checked on every input:
//   - Open never crashes on truncated/corrupt/hostile files, it returns
//     a Status (the loader's documented contract);
//   - a file that passes validation serves in-range queries without
//     crashing and with a consistent id permutation.
// The seed corpus is one small valid HLI2 image, so mutation starts
// from a file that exercises the deep (post-magic) validation paths.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fuzz_common.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"
#include "hopdb.h"
#include "labeling/mapped_index.h"
#include "util/serde.h"

namespace {

std::string ScratchPath() {
  static const std::string path =
      "/tmp/hopdb_fuzz_hli2." + std::to_string(::getpid()) + ".bin";
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = ScratchPath();
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  if (!hopdb::WriteStringToFile(path, bytes).ok()) return 0;

  hopdb::MappedIndex::OpenOptions options;
  options.verify_arenas = true;
  auto mapped = hopdb::MappedIndex::Open(path, options);
  if (!mapped.ok()) return 0;  // rejection is the expected outcome

  const hopdb::VertexId n = mapped->num_vertices();
  for (hopdb::VertexId v = 0; v < n && v < 8; ++v) {
    const hopdb::VertexId internal = mapped->ToInternal(v);
    if (internal >= n || mapped->ToOriginal(internal) != v) {
      __builtin_trap();  // validated permutation must be a bijection
    }
    if (mapped->Query(v, v) != 0) __builtin_trap();
    (void)mapped->Query(v, n - 1 - v);
  }
  return 0;
}

namespace hopdb_fuzz {

std::vector<std::string> SeedInputs() {
  // A 6-vertex weighted graph, indexed and serialized to HLI2.
  hopdb::EdgeList edges;
  edges.set_directed(false);
  edges.set_weighted(true);
  edges.Add(0, 1, 2);
  edges.Add(1, 2, 1);
  edges.Add(2, 3, 4);
  edges.Add(3, 4, 1);
  edges.Add(0, 5, 7);
  edges.Add(5, 4, 1);
  auto graph = hopdb::CsrGraph::FromEdgeList(edges);
  if (!graph.ok()) return {};
  auto index = hopdb::HopDbIndex::Build(*graph);
  if (!index.ok()) return {};
  const std::string path = ScratchPath() + ".seed";
  if (!hopdb::MappedIndex::Write(index->label_index(), index->ranking(),
                                 path)
           .ok()) {
    return {};
  }
  std::string bytes;
  const hopdb::Status read = hopdb::ReadFileToString(path, &bytes);
  std::remove(path.c_str());
  if (!read.ok()) return {};
  return {bytes};
}

}  // namespace hopdb_fuzz
