// Shared driver for hopdb fuzz targets. Each target defines the
// libFuzzer entry point LLVMFuzzerTestOneInput plus SeedInputs(), a
// small set of structured inputs that exercise the happy path.
//
// Two build modes share every target source file:
//   - libFuzzer (-DHOPDB_BUILD_FUZZERS=ON, clang only): the real
//     coverage-guided binary; SeedInputs() is written out as the
//     starting corpus when the binary is run with -seed_corpus_dir.
//   - standalone smoke (always built, any compiler): this header
//     supplies a main() that replays argv files if given, otherwise
//     runs a deterministic loop of seed / mutated-seed / random inputs.
//     Registered as a ctest entry, so every CI run gets a short fuzz
//     pass without a libFuzzer toolchain.
//
// Targets signal a property violation with __builtin_trap() (not
// assert) so release builds abort too.

#ifndef HOPDB_TESTS_FUZZ_FUZZ_COMMON_H_
#define HOPDB_TESTS_FUZZ_FUZZ_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace hopdb_fuzz {

/// Structured inputs the target wants in every corpus (may be empty).
std::vector<std::string> SeedInputs();

}  // namespace hopdb_fuzz

#if defined(HOPDB_FUZZ_STANDALONE)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/random.h"

namespace hopdb_fuzz {

inline void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

/// Seed verbatim, then truncated / byte-flipped / extended variants,
/// then pure random buffers: cheap approximations of what a guided
/// fuzzer finds in its first minutes.
inline int SmokeLoop(int iterations, uint64_t seed) {
  const std::vector<std::string> seeds = SeedInputs();
  for (const std::string& s : seeds) RunOne(s);

  hopdb::Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    std::string input;
    if (!seeds.empty() && rng.Chance(0.7)) {
      input = seeds[rng.Below(seeds.size())];
      const int kind = static_cast<int>(rng.Below(3));
      if (kind == 0 && !input.empty()) {
        input.resize(rng.Below(input.size() + 1));  // truncate
      } else if (kind == 1 && !input.empty()) {
        const size_t flips = 1 + rng.Below(8);
        for (size_t f = 0; f < flips; ++f) {
          input[rng.Below(input.size())] =
              static_cast<char>(rng.Below(256));
        }
      } else {
        input.append(rng.Below(32), static_cast<char>(rng.Below(256)));
      }
    } else {
      input.resize(rng.Below(96));
      for (char& c : input) c = static_cast<char>(rng.Below(256));
    }
    RunOne(input);
  }
  return iterations;
}

}  // namespace hopdb_fuzz

int main(int argc, char** argv) {
  // Replay mode: treat every argument as a crash-input file.
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      hopdb_fuzz::RunOne(buf.str());
      std::printf("replayed %s (%zu bytes)\n", argv[i], buf.str().size());
    }
    return 0;
  }
  // Timed mode (the CI fuzz-smoke leg): HOPDB_FUZZ_SMOKE_SECONDS=N
  // keeps running fresh-seeded batches until the budget expires.
  if (const char* budget = std::getenv("HOPDB_FUZZ_SMOKE_SECONDS");
      budget != nullptr && budget[0] != '\0') {
    const double seconds = std::atof(budget);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    uint64_t seed = 0x5EEDF00DULL;
    long total = 0;
    do {
      total += hopdb_fuzz::SmokeLoop(/*iterations=*/1000, seed++);
    } while (std::chrono::steady_clock::now() < deadline);
    std::printf("fuzz smoke: %ld iterations over a %.0fs budget, no trap\n",
                total, seconds);
    return 0;
  }
  const int ran = hopdb_fuzz::SmokeLoop(/*iterations=*/3000,
                                        /*seed=*/0x5EEDF00DULL);
  std::printf("fuzz smoke: %d deterministic iterations, no trap\n", ran);
  return 0;
}

#endif  // HOPDB_FUZZ_STANDALONE

#endif  // HOPDB_TESTS_FUZZ_FUZZ_COMMON_H_
