// Fuzz target for the v2 binary frame parsers (request and response).
// Properties checked on every input:
//   - the parser never reads out of bounds / crashes (sanitizers);
//   - kDone consumes a sane byte count (1..size);
//   - kDone output re-encodes to a frame the parser accepts again;
//   - kError always carries a client-safe message.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_common.h"
#include "server/protocol.h"

namespace {

void CheckRequestSide(const char* data, size_t size) {
  size_t consumed = 0;
  hopdb::Request request;
  std::string error;
  const hopdb::FrameParse verdict =
      hopdb::ParseRequestFrameV2(data, size, &consumed, &request, &error);
  if (verdict == hopdb::FrameParse::kDone) {
    if (consumed == 0 || consumed > size) __builtin_trap();
    std::string wire;
    hopdb::EncodeRequestV2(request, &wire);
    size_t consumed2 = 0;
    hopdb::Request again;
    std::string error2;
    if (hopdb::ParseRequestFrameV2(wire.data(), wire.size(), &consumed2,
                                   &again, &error2) !=
        hopdb::FrameParse::kDone) {
      __builtin_trap();  // canonical re-encoding must stay parseable
    }
  } else if (verdict == hopdb::FrameParse::kError && error.empty()) {
    __builtin_trap();  // errors must be reportable to the client
  }
}

void CheckResponseSide(const char* data, size_t size) {
  size_t consumed = 0;
  hopdb::WireResponse response;
  std::string error;
  const hopdb::FrameParse verdict = hopdb::ParseResponseFrameV2(
      data, size, &consumed, &response, &error);
  if (verdict == hopdb::FrameParse::kDone) {
    if (consumed == 0 || consumed > size) __builtin_trap();
    std::string wire;
    hopdb::EncodeResponseV2(response, &wire);
    size_t consumed2 = 0;
    hopdb::WireResponse again;
    std::string error2;
    if (hopdb::ParseResponseFrameV2(wire.data(), wire.size(), &consumed2,
                                    &again, &error2) !=
        hopdb::FrameParse::kDone) {
      __builtin_trap();
    }
  } else if (verdict == hopdb::FrameParse::kError && error.empty()) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);
  CheckRequestSide(bytes, size);
  CheckResponseSide(bytes, size);
  return 0;
}

namespace hopdb_fuzz {

std::vector<std::string> SeedInputs() {
  std::vector<std::string> seeds;

  const auto add_request = [&seeds](const hopdb::Request& request) {
    std::string wire;
    hopdb::EncodeRequestV2(request, &wire);
    seeds.push_back(std::move(wire));
  };

  hopdb::Request dist;
  dist.kind = hopdb::RequestKind::kDist;
  dist.src = 3;
  dist.targets = {17};
  add_request(dist);

  hopdb::Request batch = dist;
  batch.kind = hopdb::RequestKind::kBatch;
  batch.targets = {1, 2, 3, 4};
  batch.index_name = "road";
  add_request(batch);

  hopdb::Request add_edge;
  add_edge.kind = hopdb::RequestKind::kAddEdge;
  add_edge.src = 3;
  add_edge.targets = {17};
  add_edge.k = 5;  // edge weight
  add_request(add_edge);

  hopdb::Request del_edge;
  del_edge.kind = hopdb::RequestKind::kDelEdge;
  del_edge.src = 3;
  del_edge.targets = {17};
  del_edge.index_name = "road";
  add_request(del_edge);

  hopdb::Request commit;
  commit.kind = hopdb::RequestKind::kCommit;
  add_request(commit);

  hopdb::Request within;
  within.kind = hopdb::RequestKind::kWithin;
  within.src = 7;
  within.k = 3;  // radius
  add_request(within);

  hopdb::Request reach;
  reach.kind = hopdb::RequestKind::kReach;
  reach.src = 7;
  reach.targets = {23};
  reach.k = 4;  // bound, carried in the 4-byte aux payload
  reach.index_name = "road";
  add_request(reach);

  hopdb::Request path;
  path.kind = hopdb::RequestKind::kPath;
  path.src = 7;
  path.targets = {23};
  add_request(path);

  hopdb::Request attach;
  attach.kind = hopdb::RequestKind::kAttach;
  attach.index_name = "road";
  attach.path = "/tmp/road.hli";
  add_request(attach);

  const auto add_response = [&seeds](const hopdb::WireResponse& response) {
    std::string wire;
    hopdb::EncodeResponseV2(response, &wire);
    seeds.push_back(std::move(wire));
  };

  add_response(hopdb::WireDistanceResponse(42));
  add_response(hopdb::WireDistancesResponse({1, 2, hopdb::kInfDistance}));
  add_response(hopdb::WireNeighborsResponse({{4, 1}, {9, 2}}));
  add_response(hopdb::WireOk("committed updates=3"));
  add_response(hopdb::WireErr("no such index"));
  add_response(hopdb::WireBlobResponse("line one\nline two\n"));

  return seeds;
}

}  // namespace hopdb_fuzz
