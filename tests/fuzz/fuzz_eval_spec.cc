// Fuzz target for the eval workload-spec parser (`hopdb_cli eval
// --spec`). The spec is operator-supplied text, so the parser must hold
// the same contract as the wire parsers: never crash, never accept
// unbounded work, and reject with a line-numbered InvalidArgument.
// Properties checked on every input:
//   - ParseEvalSpec never reads out of bounds / crashes (sanitizers);
//   - accepted specs respect every documented cap (datasets, workloads,
//     vertices, queries, verify sources) — the RunEval work bound;
//   - accepted specs only name known variants;
//   - rejections are client-safe InvalidArgument with a message.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "fuzz_common.h"

namespace {

bool KnownVariant(const std::string& name) {
  for (const char* variant : hopdb::kEvalVariants) {
    if (name == variant) return true;
  }
  return false;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  hopdb::Result<hopdb::EvalSpec> spec = hopdb::ParseEvalSpec(text);
  if (spec.ok()) {
    if (spec->datasets.empty() || spec->datasets.size() > 32) {
      __builtin_trap();
    }
    if (spec->workloads.empty() || spec->workloads.size() > 32) {
      __builtin_trap();
    }
    for (const hopdb::EvalDataset& d : spec->datasets) {
      if (d.ad_hoc && (d.n == 0 || d.n > 2'000'000)) __builtin_trap();
      if (!(d.scale > 0) || d.scale > 100) __builtin_trap();
    }
    for (const std::string& v : spec->variants) {
      if (!KnownVariant(v)) __builtin_trap();
    }
    if (spec->num_queries > 1'000'000) __builtin_trap();
    if (spec->verify_sources > 256) __builtin_trap();
  } else {
    if (spec.status().code() != hopdb::StatusCode::kInvalidArgument) {
      __builtin_trap();  // the only rejection the CLI maps to usage help
    }
    if (spec.status().message().empty()) __builtin_trap();
  }
  return 0;
}

namespace hopdb_fuzz {

std::vector<std::string> SeedInputs() {
  return {
      hopdb::DefaultEvalSpecText(/*ci=*/true),
      hopdb::DefaultEvalSpecText(/*ci=*/false),
      "dataset Enron scale=0.5\n"
      "variants heap,blocked\n"
      "queries 512 seed=7\n"
      "workload within radius=3\n"
      "workload reach bound=4\n"
      "workload path\n"
      "verify 4\n",
      "graph n=2000 avg-degree=8 directed=1 weighted=1 seed=13\n"
      "workload batch size=16\n"
      "workload knn k=8\n",
      "# comment only\n\n   \n",
      "variants compressed\ngraph n=16\nqueries 1\n",
  };
}

}  // namespace hopdb_fuzz
