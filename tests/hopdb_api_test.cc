#include "hopdb.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "io/temp_dir.h"
#include "util/serde.h"
#include "search/dijkstra.h"

namespace hopdb {
namespace {

TEST(HopDbApiTest, QuickstartFlow) {
  EdgeList edges(0, /*directed=*/false);
  edges.set_directed(false);
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 0);
  auto index = HopDbIndex::Build(edges);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Query(0, 2), 2u);
  EXPECT_EQ(index->Query(1, 3), 2u);
  EXPECT_EQ(index->Query(0, 0), 0u);
  EXPECT_EQ(index->num_vertices(), 4u);
  EXPECT_FALSE(index->directed());
}

TEST(HopDbApiTest, QueriesUseOriginalIds) {
  // A graph whose highest-degree vertex is NOT id 0, so the rank
  // permutation is non-trivial and id translation is exercised.
  EdgeList edges(6, /*directed=*/false);
  for (VertexId v = 0; v < 5; ++v) edges.Add(5, v);  // hub is vertex 5
  auto index = HopDbIndex::Build(edges);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->ranking().ToInternal(5), 0u);
  auto g = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) { return index->Query(s, t); })
                  .ok());
}

TEST(HopDbApiTest, DirectedGraph) {
  auto index = HopDbIndex::Build(PaperExampleGraph());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->directed());
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) { return index->Query(s, t); })
                  .ok());
}

TEST(HopDbApiTest, CustomRanking) {
  EdgeList edges = GridGraph(4, 4);
  HopDbOptions opts;
  opts.ranking = HopDbOptions::Ranking::kCustom;
  opts.custom_order.resize(16);
  for (VertexId i = 0; i < 16; ++i) {
    opts.custom_order[i] = 15 - i;  // reverse id order
  }
  auto index = HopDbIndex::Build(edges, opts);
  ASSERT_TRUE(index.ok());
  auto g = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) { return index->Query(s, t); })
                  .ok());
}

TEST(HopDbApiTest, CustomRankingWrongSizeFails) {
  HopDbOptions opts;
  opts.ranking = HopDbOptions::Ranking::kCustom;
  opts.custom_order = {0, 1};
  auto index = HopDbIndex::Build(GridGraph(3, 3), opts);
  EXPECT_FALSE(index.ok());
}

TEST(HopDbApiTest, SaveLoadRoundTrip) {
  auto dir = TempDir::Create("api");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 5;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto index = HopDbIndex::Build(*edges);
  ASSERT_TRUE(index.ok());
  std::string path = dir->File("g.hopdb");
  ASSERT_TRUE(index->Save(path).ok());
  auto back = HopDbIndex::Load(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_vertices(), index->num_vertices());
  for (VertexId s = 0; s < 300; s += 17) {
    for (VertexId t = 0; t < 300; t += 23) {
      EXPECT_EQ(back->Query(s, t), index->Query(s, t));
    }
  }
}

TEST(HopDbApiTest, BuildStatsExposed) {
  auto index = HopDbIndex::Build(StarGraphGS());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->build_stats().initial_entries, 5u);
  EXPECT_GT(index->AvgLabelSize(), 0.0);
  EXPECT_GT(index->PaperSizeBytes(), 0u);
}

TEST(HopDbApiTest, BuildOptionsPropagate) {
  GlpOptions glp;
  glp.num_vertices = 5000;
  glp.target_avg_degree = 8;
  glp.seed = 7;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  HopDbOptions opts;
  opts.build.time_budget_seconds = 1e-7;
  auto index = HopDbIndex::Build(*edges, opts);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsDeadlineExceeded());
}

TEST(HopDbApiTest, ReachabilityMatchesFiniteDistance) {
  // Directed example: reachability is asymmetric.
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto index = HopDbIndex::Build(*g);
  ASSERT_TRUE(index.ok());
  for (VertexId s = 0; s < g->num_vertices(); ++s) {
    const std::vector<Distance> truth = ExactDistances(*g, s);
    for (VertexId t = 0; t < g->num_vertices(); ++t) {
      EXPECT_EQ(index->Reachable(s, t), truth[t] != kInfDistance)
          << s << "->" << t;
    }
  }
}

TEST(HopDbApiTest, CompressedSaveLoadRoundTrips) {
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 19;
  auto edges = GenerateDirectedGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto index = HopDbIndex::Build(*edges);
  ASSERT_TRUE(index.ok());

  auto dir = TempDir::Create("api_compressed");
  ASSERT_TRUE(dir.ok());
  const std::string plain_path = dir->File("idx.hli");
  const std::string comp_path = dir->File("idx.hlc");
  ASSERT_TRUE(index->Save(plain_path).ok());
  ASSERT_TRUE(index->SaveCompressed(comp_path).ok());

  // The compressed file is smaller, and Load auto-detects both formats.
  auto plain_size = FileSizeBytes(plain_path);
  auto comp_size = FileSizeBytes(comp_path);
  ASSERT_TRUE(plain_size.ok() && comp_size.ok());
  EXPECT_LT(*comp_size, *plain_size);

  auto from_plain = HopDbIndex::Load(plain_path);
  auto from_comp = HopDbIndex::Load(comp_path);
  ASSERT_TRUE(from_plain.ok());
  ASSERT_TRUE(from_comp.ok()) << from_comp.status().ToString();
  for (VertexId s = 0; s < index->num_vertices(); s += 13) {
    for (VertexId t = 0; t < index->num_vertices(); t += 7) {
      const Distance expected = index->Query(s, t);
      EXPECT_EQ(from_plain->Query(s, t), expected);
      EXPECT_EQ(from_comp->Query(s, t), expected);
    }
  }
}

}  // namespace
}  // namespace hopdb
