// Differential harness for incremental label repair: on randomized
// update streams (insert/delete/reweight mixes over BA and GLP graphs,
// unweighted/weighted/directed, rebuild thread counts 1/2/8) the
// incrementally repaired index must answer every sampled query
// identically to a from-scratch rebuild on the mutated graph AND to the
// Dijkstra oracle. This is the correctness contract ISSUE 8 ships: the
// repair algorithm is only as trustworthy as this harness is thorough.

#include "labeling/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "gen/barabasi_albert.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "query/knn.h"
#include "query/path.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

EdgeList BaGraph(VertexId n, uint32_t m, uint64_t seed) {
  BaOptions options;
  options.num_vertices = n;
  options.edges_per_vertex = m;
  options.seed = seed;
  return GenerateBarabasiAlbert(options).ValueOrDie();
}

EdgeList GlpGraph(VertexId n, double avg_degree, uint64_t seed) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = avg_degree;
  options.seed = seed;
  return GenerateGlp(options).ValueOrDie();
}

// Ranked CSR + label index + dynamic graph triple the updater operates
// on. Everything below works in internal (rank) ids.
struct Fixture {
  CsrGraph ranked;
  TwoHopIndex index;
  DynamicGraph dyn;
};

Fixture MakeFixture(const EdgeList& edges, const BuildOptions& build) {
  auto graph = CsrGraph::FromEdgeList(edges);
  EXPECT_TRUE(graph.ok()) << graph.status();
  const RankMapping mapping = ComputeRanking(
      *graph, graph->directed() ? RankingPolicy::kInOutProduct
                                : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*graph, mapping);
  EXPECT_TRUE(ranked.ok()) << ranked.status();
  auto built = BuildHopLabeling(*ranked, build);
  EXPECT_TRUE(built.ok()) << built.status();
  Fixture fix{std::move(*ranked), std::move(built->index),
              DynamicGraph()};
  fix.dyn = DynamicGraph::FromGraph(fix.ranked);
  return fix;
}

// Compares the repaired index against (a) a from-scratch rebuild on the
// mutated graph and (b) the Dijkstra oracle, over `sources` full rows.
void CheckEquivalence(const DynamicGraph& dyn, const TwoHopIndex& repaired,
                      const BuildOptions& build, VertexId sources,
                      uint64_t seed) {
  EdgeList edges = dyn.ToEdgeList();
  auto csr = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(csr.ok()) << csr.status();
  auto rebuilt = BuildHopLabeling(*csr, build);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

  const VertexId n = dyn.num_vertices();
  Rng rng(seed);
  for (VertexId i = 0; i < sources && i < n; ++i) {
    const VertexId s =
        n <= sources ? i : static_cast<VertexId>(rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*csr, s);
    for (VertexId t = 0; t < n; ++t) {
      const Distance want = truth[t];
      ASSERT_EQ(repaired.Query(s, t), want)
          << "repaired index wrong at (" << s << ", " << t << ")";
      ASSERT_EQ(rebuilt->index.Query(s, t), want)
          << "rebuilt index wrong at (" << s << ", " << t << ")";
    }
  }
}

// WITHIN / PATH after an update stream: once the stream is finalized
// (the serving layer's COMMIT), the repaired labels must answer the
// richer verbs identically to a from-scratch rebuild on the mutated
// graph — WITHIN as the exact radius set (distances included), PATH as
// a real shortest path on the mutated adjacency. This is the dynamic
// counterpart of the static verb-oracle sweep in oracle_cross_check.
void CheckVerbsAfterStream(EdgeList edges, uint64_t seed, int num_ops,
                           Distance radius) {
  Fixture fix = MakeFixture(edges, BuildOptions());
  IncrementalUpdater updater(&fix.dyn, &fix.index);

  const VertexId n = fix.dyn.num_vertices();
  Rng rng(seed);
  int applied = 0;
  while (applied < num_ops) {
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    UpdateOp op;
    op.u = u;
    op.v = v;
    if (fix.dyn.ArcWeight(u, v) != kInfDistance && rng.Chance(0.5)) {
      op.kind = UpdateOp::Kind::kDelEdge;
    } else {
      op.kind = UpdateOp::Kind::kAddEdge;
      op.weight =
          edges.weighted() ? static_cast<Distance>(rng.Uniform(1, 9)) : 1;
    }
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
    if (*changed) ++applied;
  }
  updater.Finalize();

  auto mutated = CsrGraph::FromEdgeList(fix.dyn.ToEdgeList());
  ASSERT_TRUE(mutated.ok()) << mutated.status();
  auto rebuilt = BuildHopLabeling(*mutated, BuildOptions());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

  KnnEngine repaired_knn(fix.index, KnnEngine::Direction::kForward);
  KnnEngine rebuilt_knn(rebuilt->index, KnnEngine::Direction::kForward);
  PathReconstructor paths(*mutated, fix.index);

  const auto by_vertex = [](const KnnEngine::Neighbor& a,
                            const KnnEngine::Neighbor& b) {
    return a.vertex < b.vertex;
  };
  for (int i = 0; i < 8; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*mutated, s);

    std::vector<KnnEngine::Neighbor> got = repaired_knn.QueryWithin(s, radius);
    std::vector<KnnEngine::Neighbor> want = rebuilt_knn.QueryWithin(s, radius);
    std::sort(got.begin(), got.end(), by_vertex);
    std::sort(want.begin(), want.end(), by_vertex);
    ASSERT_EQ(got.size(), want.size()) << "WITHIN(" << s << ") size";
    for (size_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(got[j].vertex, want[j].vertex) << "WITHIN(" << s << ")";
      ASSERT_EQ(got[j].dist, want[j].dist) << "WITHIN(" << s << ")";
      ASSERT_EQ(got[j].dist, truth[got[j].vertex]) << "WITHIN(" << s << ")";
    }

    for (int j = 0; j < 16; ++j) {
      const VertexId t = static_cast<VertexId>(rng.Below(n));
      auto path = paths.ShortestPath(s, t);
      if (truth[t] == kInfDistance) {
        ASSERT_FALSE(path.ok())
            << "PATH(" << s << ", " << t << ") on unreachable pair";
        continue;
      }
      ASSERT_TRUE(path.ok()) << "PATH(" << s << ", " << t
                             << "): " << path.status();
      ASSERT_EQ(PathLength(*mutated, *path), truth[t])
          << "PATH(" << s << ", " << t << ") not shortest after repair";
    }
  }
}

TEST(IncrementalTest, WithinAndPathMatchRebuildUnweighted) {
  CheckVerbsAfterStream(GlpGraph(200, 4.0, /*seed=*/301), /*seed=*/302,
                        /*num_ops=*/80, /*radius=*/3);
}

TEST(IncrementalTest, WithinAndPathMatchRebuildWeighted) {
  EdgeList edges = BaGraph(180, 2, /*seed=*/303);
  AssignUniformWeights(&edges, 1, 9, /*seed=*/304);
  CheckVerbsAfterStream(edges, /*seed=*/305, /*num_ops=*/70, /*radius=*/7);
}

// Random op stream: inserts of absent edges, deletes of present edges,
// reweights of present edges (weighted streams only). Tracks the live
// edge set so deletes always target real edges.
struct StreamConfig {
  VertexId n = 0;
  size_t ops = 0;
  double p_insert = 0.45;
  double p_delete = 0.35;  // rest are reweights (weighted only)
  bool weighted = false;
  Distance max_weight = 9;
  size_t check_every = 0;  // differential checkpoints; 0 = only at end
  VertexId check_sources = 6;
  BuildOptions build;
};

void RunStream(EdgeList edges, const StreamConfig& config, uint64_t seed) {
  if (config.weighted) {
    AssignUniformWeights(&edges, 1, config.max_weight,
                         DeriveSeed(seed, 7));
  }
  Fixture fix = MakeFixture(edges, config.build);
  UpdateOptions options;
  options.rebuild = config.build;
  IncrementalUpdater updater(&fix.dyn, &fix.index, options);

  std::vector<std::pair<VertexId, VertexId>> live;
  for (VertexId u = 0; u < fix.dyn.num_vertices(); ++u) {
    for (const Arc& arc : fix.dyn.OutArcs(u)) {
      if (fix.dyn.directed() || arc.to > u) live.push_back({u, arc.to});
    }
  }

  Rng rng(seed);
  const VertexId n = config.n;
  size_t applied = 0;
  for (size_t i = 0; i < config.ops; ++i) {
    const double roll = rng.NextDouble();
    UpdateOp op;
    if (roll < config.p_insert || live.empty()) {
      op.kind = UpdateOp::Kind::kAddEdge;
      do {
        op.u = static_cast<VertexId>(rng.Below(n));
        op.v = static_cast<VertexId>(rng.Below(n));
      } while (op.u == op.v ||
               fix.dyn.ArcWeight(op.u, op.v) != kInfDistance);
      op.weight = config.weighted
                      ? static_cast<Distance>(
                            rng.Uniform(1, config.max_weight))
                      : 1;
      live.push_back({op.u, op.v});
    } else if (roll < config.p_insert + config.p_delete ||
               !config.weighted) {
      const size_t pick = rng.Below(live.size());
      op.kind = UpdateOp::Kind::kDelEdge;
      op.u = live[pick].first;
      op.v = live[pick].second;
      live[pick] = live.back();
      live.pop_back();
    } else {
      const size_t pick = rng.Below(live.size());
      op.kind = UpdateOp::Kind::kAddEdge;  // reweight via upsert
      op.u = live[pick].first;
      op.v = live[pick].second;
      op.weight = static_cast<Distance>(rng.Uniform(1, config.max_weight));
    }
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
    applied += *changed ? 1 : 0;

    if (config.check_every != 0 && (i + 1) % config.check_every == 0) {
      updater.Finalize();
      ASSERT_NO_FATAL_FAILURE(
          CheckEquivalence(fix.dyn, fix.index, config.build,
                           config.check_sources, DeriveSeed(seed, i)));
      EXPECT_TRUE(fix.index.Validate(/*ranked=*/true).ok());
    }
  }
  updater.Finalize();
  EXPECT_GT(applied, config.ops / 2);
  ASSERT_NO_FATAL_FAILURE(CheckEquivalence(fix.dyn, fix.index,
                                           config.build,
                                           config.check_sources + 6,
                                           DeriveSeed(seed, 99)));
  auto valid = fix.index.Validate(/*ranked=*/true);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  const UpdateStats& stats = updater.stats();
  EXPECT_EQ(stats.ops_applied, applied);
}

TEST(IncrementalTest, InsertOnlyUnweightedBa) {
  StreamConfig config;
  config.n = 200;
  config.ops = 120;
  config.p_insert = 1.0;
  config.check_every = 30;
  RunStream(BaGraph(config.n, 2, /*seed=*/101), config, /*seed=*/201);
}

TEST(IncrementalTest, DeleteOnlyUnweightedBa) {
  StreamConfig config;
  config.n = 200;
  config.ops = 120;
  config.p_insert = 0.0;
  config.p_delete = 1.0;
  config.check_every = 30;
  RunStream(BaGraph(config.n, 3, /*seed=*/102), config, /*seed=*/202);
}

TEST(IncrementalTest, MixedUnweightedGlp) {
  StreamConfig config;
  config.n = 250;
  config.ops = 150;
  config.check_every = 50;
  RunStream(GlpGraph(config.n, 4.0, /*seed=*/103), config, /*seed=*/203);
}

TEST(IncrementalTest, MixedWeightedBa) {
  StreamConfig config;
  config.n = 200;
  config.ops = 150;
  config.weighted = true;
  config.check_every = 50;
  RunStream(BaGraph(config.n, 2, /*seed=*/104), config, /*seed=*/204);
}

TEST(IncrementalTest, MixedWeightedGlpDirected) {
  GlpOptions options;
  options.num_vertices = 200;
  options.target_avg_degree = 4.0;
  options.seed = 105;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  StreamConfig config;
  config.n = 200;
  config.ops = 150;
  config.weighted = true;
  config.check_every = 50;
  RunStream(*edges, config, /*seed=*/205);
}

// The ISSUE acceptance leg: >= 1k mixed ops, each build mode exercised,
// rebuild thread counts 1/2/8 must agree with the repaired labels.
TEST(IncrementalTest, LongMixedStreamAcrossThreadCounts) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    StreamConfig config;
    config.n = 300;
    config.ops = 340;  // 3 x 340 > 1k ops across the sweep
    config.weighted = true;
    config.check_every = 0;  // checkpoint only at the end; keep runtime sane
    config.build.num_threads = threads;
    config.build.mode =
        threads == 1 ? BuildMode::kHopDoubling : BuildMode::kHybrid;
    RunStream(GlpGraph(config.n, 4.0, /*seed=*/106 + threads), config,
              /*seed=*/206 + threads);
  }
}

// Weight-increase and weight-decrease repairs through the reweight path.
TEST(IncrementalTest, ReweightOnlyStream) {
  StreamConfig config;
  config.n = 200;
  config.ops = 120;
  config.p_insert = 0.0;
  config.p_delete = 0.0;
  config.weighted = true;
  config.check_every = 40;
  RunStream(BaGraph(config.n, 3, /*seed=*/107), config, /*seed=*/207);
}

// Deleting every edge must drain the labels down to the trivial ones and
// answer infinity everywhere off-diagonal.
TEST(IncrementalTest, DrainToEmptyGraph) {
  EdgeList edges = BaGraph(60, 2, /*seed=*/108);
  Fixture fix = MakeFixture(edges, BuildOptions());
  IncrementalUpdater updater(&fix.dyn, &fix.index);
  std::vector<std::pair<VertexId, VertexId>> live;
  for (VertexId u = 0; u < fix.dyn.num_vertices(); ++u) {
    for (const Arc& arc : fix.dyn.OutArcs(u)) {
      if (arc.to > u) live.push_back({u, arc.to});
    }
  }
  for (const auto& [u, v] : live) {
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDelEdge;
    op.u = u;
    op.v = v;
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
    ASSERT_TRUE(*changed);
  }
  updater.Finalize();
  EXPECT_EQ(fix.dyn.num_arcs(), 0u);
  for (VertexId s = 0; s < 60; ++s) {
    for (VertexId t = 0; t < 60; ++t) {
      EXPECT_EQ(fix.index.Query(s, t), s == t ? 0 : kInfDistance);
    }
  }
}

// Structural no-ops and invalid ops: redundant add, absent delete,
// self-loop, out-of-range, zero weight.
TEST(IncrementalTest, NoOpsAndValidation) {
  EdgeList edges = BaGraph(50, 2, /*seed=*/109);
  Fixture fix = MakeFixture(edges, BuildOptions());
  IncrementalUpdater updater(&fix.dyn, &fix.index);

  // Find one existing edge.
  VertexId eu = kInvalidVertex, ev = kInvalidVertex;
  for (VertexId u = 0; u < 50 && eu == kInvalidVertex; ++u) {
    for (const Arc& arc : fix.dyn.OutArcs(u)) {
      eu = u;
      ev = arc.to;
      break;
    }
  }
  ASSERT_NE(eu, kInvalidVertex);

  UpdateOp redundant{UpdateOp::Kind::kAddEdge, eu, ev, 1};
  auto changed = updater.Apply(redundant);
  ASSERT_TRUE(changed.ok()) << changed.status();
  EXPECT_FALSE(*changed);
  EXPECT_EQ(updater.stats().ops_noop, 1u);

  UpdateOp self{UpdateOp::Kind::kAddEdge, 3, 3, 1};
  EXPECT_FALSE(updater.Apply(self).ok());
  UpdateOp range{UpdateOp::Kind::kAddEdge, 3, 5000, 1};
  EXPECT_FALSE(updater.Apply(range).ok());
  UpdateOp zero{UpdateOp::Kind::kAddEdge, 3, 4, 0};
  EXPECT_FALSE(updater.Apply(zero).ok());
  // Delete an edge guaranteed absent (self-check first).
  VertexId au = 0, av = 0;
  bool found = false;
  for (VertexId u = 0; u < 50 && !found; ++u) {
    for (VertexId v = u + 1; v < 50 && !found; ++v) {
      if (fix.dyn.ArcWeight(u, v) == kInfDistance) {
        au = u;
        av = v;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  UpdateOp absent{UpdateOp::Kind::kDelEdge, au, av, 1};
  EXPECT_FALSE(updater.Apply(absent).ok());
}

// The frontier valve: with the threshold at epsilon every repair takes
// the full-rebuild fallback, and answers must still be exact.
TEST(IncrementalTest, RebuildFallbackStaysExact) {
  EdgeList edges = BaGraph(120, 2, /*seed=*/110);
  Fixture fix = MakeFixture(edges, BuildOptions());
  UpdateOptions options;
  options.rebuild_frontier_fraction = 1e-9;
  IncrementalUpdater updater(&fix.dyn, &fix.index, options);
  // Deletes: the valve only guards the weight-increase path (decreases
  // use the resumed-search repair, which has no frontier to bound).
  Rng rng(210);
  for (int i = 0; i < 15; ++i) {
    const EdgeList current = fix.dyn.ToEdgeList();
    ASSERT_FALSE(current.edges().empty());
    const Edge& pick =
        current.edges()[rng.Below(current.edges().size())];
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDelEdge;
    op.u = pick.src;
    op.v = pick.dst;
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
  }
  updater.Finalize();
  EXPECT_GT(updater.stats().full_rebuilds, 0u);
  ASSERT_NO_FATAL_FAILURE(
      CheckEquivalence(fix.dyn, fix.index, BuildOptions(), 8, 310));
}

TEST(IncrementalTest, ApplyBatchFinalizes) {
  EdgeList edges = BaGraph(80, 2, /*seed=*/111);
  Fixture fix = MakeFixture(edges, BuildOptions());
  IncrementalUpdater updater(&fix.dyn, &fix.index);
  std::vector<UpdateOp> ops;
  Rng rng(211);
  for (int i = 0; i < 10; ++i) {
    UpdateOp op;
    op.kind = UpdateOp::Kind::kAddEdge;
    do {
      op.u = static_cast<VertexId>(rng.Below(80));
      op.v = static_cast<VertexId>(rng.Below(80));
    } while (op.u == op.v || fix.dyn.ArcWeight(op.u, op.v) != kInfDistance);
    bool dup = false;
    for (const UpdateOp& prior : ops) {
      if (prior.u == op.u && prior.v == op.v) dup = true;
    }
    if (dup) continue;
    ops.push_back(op);
  }
  ASSERT_TRUE(updater.ApplyBatch(ops).ok());
  ASSERT_NO_FATAL_FAILURE(
      CheckEquivalence(fix.dyn, fix.index, BuildOptions(), 8, 311));
}

TEST(IncrementalTest, ParseUpdateOpLine) {
  auto add = ParseUpdateOpLine("ADDEDGE 3 7 5");
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add->kind, UpdateOp::Kind::kAddEdge);
  EXPECT_EQ(add->u, 3u);
  EXPECT_EQ(add->v, 7u);
  EXPECT_EQ(add->weight, 5u);

  auto add_default = ParseUpdateOpLine("add 1 2");
  ASSERT_TRUE(add_default.ok());
  EXPECT_EQ(add_default->weight, 1u);

  auto del = ParseUpdateOpLine("DELEDGE 9 4");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, UpdateOp::Kind::kDelEdge);

  EXPECT_TRUE(ParseUpdateOpLine("").status().IsNotFound());
  EXPECT_TRUE(ParseUpdateOpLine("# comment").status().IsNotFound());
  EXPECT_FALSE(ParseUpdateOpLine("FROBNICATE 1 2").ok());
  EXPECT_FALSE(ParseUpdateOpLine("ADDEDGE 1").ok());
  EXPECT_FALSE(ParseUpdateOpLine("DELEDGE 1 2 3").ok());
  EXPECT_FALSE(ParseUpdateOpLine("ADDEDGE a b").ok());
}

// Deep copies of every label vector, for diffing after a repair.
std::vector<std::vector<LabelEntry>> SnapshotLabels(
    const TwoHopIndex& index, bool out_side) {
  std::vector<std::vector<LabelEntry>> copy(index.num_vertices());
  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    const auto label = out_side ? index.OutLabel(v) : index.InLabel(v);
    copy[v].assign(label.begin(), label.end());
  }
  return copy;
}

bool LabelDiffers(std::span<const LabelEntry> now,
                  const std::vector<LabelEntry>& before) {
  if (now.size() != before.size()) return true;
  for (size_t i = 0; i < now.size(); ++i) {
    if (now[i].pivot != before[i].pivot || now[i].dist != before[i].dist) {
      return true;
    }
  }
  return false;
}

// The COMMIT selective-invalidation contract: every owner whose label
// vector actually changed during a repair MUST appear in the touched
// set TakeTouchedOwners returns (a superset is fine — false positives
// only cost cache entries, false negatives serve stale distances).
void RunTouchedOwnersStream(EdgeList edges, uint64_t seed) {
  Fixture fix = MakeFixture(edges, BuildOptions());
  IncrementalUpdater updater(&fix.dyn, &fix.index);
  const VertexId n = fix.dyn.num_vertices();
  Rng rng(seed);
  for (int round = 0; round < 8; ++round) {
    const auto out_before = SnapshotLabels(fix.index, /*out_side=*/true);
    const auto in_before = SnapshotLabels(fix.index, /*out_side=*/false);
    // A small mixed batch per round: one insert of an absent edge, one
    // delete of a present edge.
    UpdateOp add;
    add.kind = UpdateOp::Kind::kAddEdge;
    do {
      add.u = static_cast<VertexId>(rng.Below(n));
      add.v = static_cast<VertexId>(rng.Below(n));
    } while (add.u == add.v ||
             fix.dyn.ArcWeight(add.u, add.v) != kInfDistance);
    ASSERT_TRUE(updater.Apply(add).ok());
    const EdgeList current = fix.dyn.ToEdgeList();
    ASSERT_FALSE(current.edges().empty());
    const Edge& pick = current.edges()[rng.Below(current.edges().size())];
    UpdateOp del{UpdateOp::Kind::kDelEdge, pick.src, pick.dst, 1};
    ASSERT_TRUE(updater.Apply(del).ok());
    updater.Finalize();

    const IncrementalUpdater::TouchedOwners touched =
        updater.TakeTouchedOwners();
    EXPECT_TRUE(std::is_sorted(touched.out.begin(), touched.out.end()));
    EXPECT_TRUE(std::is_sorted(touched.in.begin(), touched.in.end()));
    if (!fix.dyn.directed()) {
      EXPECT_EQ(touched.out, touched.in);
    }
    if (touched.all) continue;  // fallback rebuild: everything is fair game
    for (VertexId v = 0; v < n; ++v) {
      if (LabelDiffers(fix.index.OutLabel(v), out_before[v])) {
        EXPECT_TRUE(std::binary_search(touched.out.begin(),
                                       touched.out.end(), v))
            << "Lout(" << v << ") changed but was not reported touched";
      }
      if (LabelDiffers(fix.index.InLabel(v), in_before[v])) {
        EXPECT_TRUE(std::binary_search(touched.in.begin(),
                                       touched.in.end(), v))
            << "Lin(" << v << ") changed but was not reported touched";
      }
    }

    // Take resets: an immediate second call reports nothing.
    const auto empty = updater.TakeTouchedOwners();
    EXPECT_FALSE(empty.all);
    EXPECT_TRUE(empty.out.empty());
    EXPECT_TRUE(empty.in.empty());
  }
}

TEST(IncrementalTest, TouchedOwnersCoverChangedLabelsUndirected) {
  RunTouchedOwnersStream(GlpGraph(200, 4.0, /*seed=*/120), /*seed=*/320);
}

TEST(IncrementalTest, TouchedOwnersCoverChangedLabelsDirected) {
  GlpOptions options;
  options.num_vertices = 180;
  options.target_avg_degree = 4.0;
  options.seed = 121;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  RunTouchedOwnersStream(*edges, /*seed=*/321);
}

TEST(IncrementalTest, TouchedOwnersAllAfterRebuildFallback) {
  EdgeList edges = BaGraph(120, 2, /*seed=*/122);
  Fixture fix = MakeFixture(edges, BuildOptions());
  UpdateOptions options;
  options.rebuild_frontier_fraction = 1e-9;
  IncrementalUpdater updater(&fix.dyn, &fix.index, options);
  Rng rng(222);
  while (updater.stats().full_rebuilds == 0) {
    const EdgeList current = fix.dyn.ToEdgeList();
    ASSERT_FALSE(current.edges().empty());
    const Edge& pick = current.edges()[rng.Below(current.edges().size())];
    UpdateOp op{UpdateOp::Kind::kDelEdge, pick.src, pick.dst, 1};
    ASSERT_TRUE(updater.Apply(op).ok());
  }
  updater.Finalize();
  const auto touched = updater.TakeTouchedOwners();
  EXPECT_TRUE(touched.all);
  // The reset clears the all flag too.
  EXPECT_FALSE(updater.TakeTouchedOwners().all);
}

}  // namespace
}  // namespace hopdb
