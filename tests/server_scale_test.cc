// Connection-scale test for the epoll serving core: the server must
// sustain >= 10k concurrently connected idle sockets (the whole point
// of replacing thread-per-connection reads) and stay responsive while
// they sit there. The server runs as a `hopdb_cli serve` subprocess so
// its ~10k fds and this process's ~10k client fds draw on separate
// per-process fd limits. Needs HOPDB_CLI_BIN (set by CMake); skips
// otherwise. Under sanitizers the tier drops — the goal there is
// watching the event loop under churn, not the raw number.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/temp_dir.h"
#include "server/client.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

int RunShell(const std::string& command) {
  const int rc = std::system((command + " >/dev/null 2>&1").c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

/// A `hopdb_cli serve` child process whose stdout we can parse for the
/// announced port. Killed (SIGKILL) and reaped on destruction.
class ServeProcess {
 public:
  ~ServeProcess() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (out_ >= 0) close(out_);
  }

  bool Start(const std::string& cli, const std::string& index_path) {
    int pipe_fds[2];
    if (pipe(pipe_fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) {
      close(pipe_fds[0]);
      close(pipe_fds[1]);
      return false;
    }
    if (pid_ == 0) {
      dup2(pipe_fds[1], STDOUT_FILENO);
      close(pipe_fds[0]);
      close(pipe_fds[1]);
      execl(cli.c_str(), cli.c_str(), "serve", "--index", index_path.c_str(),
            "--port", "0", "--threads", "2", "--backlog", "4096",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    close(pipe_fds[1]);
    out_ = pipe_fds[0];
    return true;
  }

  /// Parses the port from the "serving ... on HOST:PORT (...)" line.
  uint16_t ReadAnnouncedPort() {
    std::string line;
    char c;
    while (line.find('\n') == std::string::npos) {
      const ssize_t n = read(out_, &c, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return 0;
      line += c;
    }
    const size_t colon = line.rfind(':');
    if (colon == std::string::npos) return 0;
    uint64_t port = 0;
    size_t pos = colon + 1;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      port = port * 10 + static_cast<uint64_t>(line[pos] - '0');
      ++pos;
    }
    return port > 0 && port < 65536 ? static_cast<uint16_t>(port) : 0;
  }

 private:
  pid_t pid_ = -1;
  int out_ = -1;
};

int ConnectIdle(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  while (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
         0) {
    if (errno == EINTR) continue;
    close(fd);
    return -1;
  }
  return fd;
}

TEST(ServerScaleTest, SustainsTenThousandIdleConnections) {
  const char* cli = std::getenv("HOPDB_CLI_BIN");
  if (cli == nullptr) {
    GTEST_SKIP() << "HOPDB_CLI_BIN not set (run through ctest)";
  }

  // Lift our fd limit to the hard cap; the serve child inherits it.
  rlimit limit{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &limit), 0);
  limit.rlim_cur = limit.rlim_max;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &limit), 0);

  // The headline number needs fd headroom in BOTH processes; leave a
  // margin for the binary's own files, the pipe, and the epoll/eventfd
  // plumbing.
  size_t target = kSanitized ? 2000 : 10500;
  if (limit.rlim_cur != RLIM_INFINITY) {
    const size_t ceiling =
        limit.rlim_cur > 512 ? static_cast<size_t>(limit.rlim_cur) - 512 : 0;
    if (ceiling < target) target = ceiling;
  }
  if (target < 1000) {
    GTEST_SKIP() << "fd limit too low for a connection-scale test: "
                 << limit.rlim_cur;
  }

  auto tmp = TempDir::Create("hopdb_scale");
  ASSERT_TRUE(tmp.ok()) << tmp.status();
  const std::string graph_path = tmp->path() + "/g.txt";
  const std::string index_path = tmp->path() + "/g.hopdb";
  const std::string cli_s(cli);
  ASSERT_EQ(RunShell(cli_s + " gen --type glp --n 150 --avg-degree 5"
                             " --seed 21 --out " + graph_path),
            0);
  ASSERT_EQ(RunShell(cli_s + " build --graph " + graph_path + " --out " +
                     index_path),
            0);

  ServeProcess server;
  ASSERT_TRUE(server.Start(cli_s, index_path));
  const uint16_t port = server.ReadAnnouncedPort();
  ASSERT_NE(port, 0) << "serve subprocess never announced a port";

  std::vector<int> fds;
  fds.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    const int fd = ConnectIdle(port);
    if (fd < 0) break;
    fds.push_back(fd);
  }
  const size_t connected = fds.size();

  // With every idle socket still connected, the server answers queries
  // and its own count agrees with ours (+1 for the querying client).
  std::string stats;
  {
    auto client = DistanceClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status();
    EXPECT_EQ(*client->RoundTrip("PING"), "OK pong");
    EXPECT_EQ(*client->QueryDistance(0, 1), *client->QueryDistance(0, 1));
    stats = *client->RoundTrip("STATS");
  }
  size_t reported = 0;
  const size_t key = stats.find("open_connections=");
  if (key != std::string::npos) {
    reported = std::strtoull(stats.c_str() + key + strlen("open_connections="),
                             nullptr, 10);
  }
  EXPECT_GE(reported, connected) << stats;

  for (const int fd : fds) close(fd);
  EXPECT_EQ(connected, target)
      << "only " << connected << " of " << target
      << " connections opened (errno of the first failure: "
      << std::strerror(errno) << ")";
  EXPECT_GE(connected, kSanitized ? 2000u : 10000u);
}

}  // namespace
}  // namespace hopdb
