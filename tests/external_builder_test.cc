#include "labeling/external_builder.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/disk_index.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(
      g, g.directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

/// Asserts the external builder's labels are IDENTICAL (entry by entry)
/// to the in-memory builder's under the same options — the semantics
/// contract the two implementations share.
void ExpectSameIndex(const CsrGraph& ranked, const BuildOptions& build,
                     uint64_t memory_budget) {
  auto dir = TempDir::Create("extb");
  ASSERT_TRUE(dir.ok());
  ExternalBuildOptions ext;
  ext.build = build;
  ext.memory_budget_bytes = memory_budget;
  ext.scratch_dir = dir->path();
  auto ext_out = BuildHopLabelingExternal(ranked, ext);
  ASSERT_TRUE(ext_out.ok()) << ext_out.status();
  auto ext_idx = ext_out->ToMemory(ranked);
  ASSERT_TRUE(ext_idx.ok());

  auto mem_out = BuildHopLabeling(ranked, build);
  ASSERT_TRUE(mem_out.ok());

  ASSERT_EQ(ext_idx->TotalEntries(), mem_out->index.TotalEntries());
  for (VertexId v = 0; v < ranked.num_vertices(); ++v) {
    auto check = [&](std::span<const LabelEntry> a,
                     std::span<const LabelEntry> b, const char* side) {
      ASSERT_EQ(a.size(), b.size()) << side << " label of " << v;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pivot, b[i].pivot) << side << " label of " << v;
        EXPECT_EQ(a[i].dist, b[i].dist) << side << " label of " << v;
      }
    };
    check(ext_idx->OutLabel(v), mem_out->index.OutLabel(v), "out");
    check(ext_idx->InLabel(v), mem_out->index.InLabel(v), "in");
  }

  // And per-iteration survivor counts line up too.
  ASSERT_EQ(ext_out->stats.num_rule_iterations,
            mem_out->stats.num_rule_iterations);
  for (size_t i = 0; i < ext_out->stats.iterations.size(); ++i) {
    EXPECT_EQ(ext_out->stats.iterations[i].survivors,
              mem_out->stats.iterations[i].survivors)
        << "iteration " << i + 1;
    EXPECT_EQ(ext_out->stats.iterations[i].raw_candidates,
              mem_out->stats.iterations[i].raw_candidates)
        << "iteration " << i + 1;
  }
}

TEST(ExternalBuilderTest, MatchesInMemoryUndirected) {
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 3;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  ExpectSameIndex(*ranked, BuildOptions{}, 64 << 20);
}

TEST(ExternalBuilderTest, MatchesInMemoryDirected) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  ExpectSameIndex(*g, BuildOptions{}, 64 << 20);
}

TEST(ExternalBuilderTest, MatchesInMemoryDirectedScaleFree) {
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 5;
  auto edges = GenerateDirectedGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  ExpectSameIndex(*ranked, BuildOptions{}, 64 << 20);
}

TEST(ExternalBuilderTest, TinyMemoryBudgetSpillsAndStillMatches) {
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 7;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  // 16 KB budget: external sort runs spill, pruning blocks are tiny.
  ExpectSameIndex(*ranked, BuildOptions{}, 16 << 10);
}

TEST(ExternalBuilderTest, WeightedGraphMatches) {
  EdgeList e = GridGraph(6, 6);
  AssignUniformWeights(&e, 1, 9, 11);
  auto ranked = RankedGraph(e);
  ASSERT_TRUE(ranked.ok());
  ExpectSameIndex(*ranked, BuildOptions{}, 1 << 20);
}

TEST(ExternalBuilderTest, DoublingModeMatches) {
  GlpOptions glp;
  glp.num_vertices = 200;
  glp.seed = 9;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions build;
  build.mode = BuildMode::kHopDoubling;
  ExpectSameIndex(*ranked, build, 1 << 20);
}

TEST(ExternalBuilderTest, SteppingModeMatches) {
  GlpOptions glp;
  glp.num_vertices = 200;
  glp.seed = 11;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions build;
  build.mode = BuildMode::kHopStepping;
  ExpectSameIndex(*ranked, build, 1 << 20);
}

TEST(ExternalBuilderTest, NoPruneMatches) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions build;
  build.prune = false;
  ExpectSameIndex(*g, build, 1 << 20);
}

TEST(ExternalBuilderTest, OldOnlyWitnessAblationMatches) {
  GlpOptions glp;
  glp.num_vertices = 250;
  glp.seed = 13;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  BuildOptions build;
  build.prune_with_candidates = false;
  ExpectSameIndex(*ranked, build, 1 << 20);
}

TEST(ExternalBuilderTest, ExactQueriesAndDiskHandoff) {
  auto dir = TempDir::Create("extb");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 350;
  glp.seed = 15;
  auto edges = GenerateDirectedGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  ExternalBuildOptions ext;
  ext.scratch_dir = dir->path();
  auto out = BuildHopLabelingExternal(*ranked, ext);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->io.bytes_written, 0u);
  EXPECT_GT(out->total_entries, 0u);
  auto idx = out->ToMemory(*ranked);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) { return idx->Query(s, t); })
                  .ok());
  // Hand the external result to the disk query engine.
  std::string path = dir->File("final.hdi");
  ASSERT_TRUE(DiskIndex::Write(*idx, path).ok());
  auto disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk->Query(5, 9), idx->Query(5, 9));
}

TEST(ExternalBuilderTest, RequiresScratchDir) {
  auto g = CsrGraph::FromEdgeList(PathGraph(4));
  ASSERT_TRUE(g.ok());
  ExternalBuildOptions ext;
  auto out = BuildHopLabelingExternal(*g, ext);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExternalBuilderTest, DeadlineAborts) {
  auto dir = TempDir::Create("extb");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 20000;
  glp.target_avg_degree = 8;
  glp.seed = 17;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  ExternalBuildOptions ext;
  ext.scratch_dir = dir->path();
  ext.build.time_budget_seconds = 1e-7;
  auto out = BuildHopLabelingExternal(*ranked, ext);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

}  // namespace
}  // namespace hopdb
