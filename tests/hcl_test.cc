#include "baselines/hcl.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(
      g, g.directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

void ExpectExact(const CsrGraph& g, const HclIndex& idx) {
  ASSERT_TRUE(VerifyExactDistances(
                  g, [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

TEST(HclTest, PathGraphSmallCore) {
  auto ranked = RankedGraph(PathGraph(20));
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 3;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.core_size(), 3u);
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, StarGraph) {
  auto ranked = RankedGraph(StarGraphGS());
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 1;  // exactly the hub
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, DirectedExample) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  for (uint32_t core : {1u, 2u, 4u, 8u}) {
    HclOptions opts;
    opts.core_size = core;
    auto out = BuildHcl(*g, opts);
    ASSERT_TRUE(out.ok()) << "core " << core;
    ExpectExact(*g, out->index);
  }
}

TEST(HclTest, CoreLargerThanGraphClamps) {
  auto ranked = RankedGraph(PathGraph(5));
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 50;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.core_size(), 5u);
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, WeightedGraph) {
  EdgeList e = GridGraph(5, 5);
  AssignUniformWeights(&e, 1, 9, 3);
  auto ranked = RankedGraph(e);
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 4;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, DisconnectedGraph) {
  auto ranked = RankedGraph(TwoTriangles());
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 2;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, ScaleFreeExact) {
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 19;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHcl(*ranked);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
  EXPECT_GT(out->index.PaperSizeBytes(), 0u);
}

TEST(HclTest, DirectedWeightedExact) {
  ErOptions er;
  er.num_vertices = 100;
  er.num_edges = 350;
  er.directed = true;
  er.seed = 23;
  auto edges = GenerateErdosRenyi(er);
  ASSERT_TRUE(edges.ok());
  AssignUniformWeights(&*edges, 1, 6, 29);
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.core_size = 8;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_TRUE(out.ok());
  ExpectExact(*ranked, out->index);
}

TEST(HclTest, DeadlineAborts) {
  GlpOptions glp;
  glp.num_vertices = 20000;
  glp.target_avg_degree = 6;
  glp.seed = 31;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  HclOptions opts;
  opts.time_budget_seconds = 1e-7;
  auto out = BuildHcl(*ranked, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

}  // namespace
}  // namespace hopdb
