// hopdb_cli command plumbing: gen -> build -> query -> stats round trips
// through real files, plus usage-error and help paths.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/graph_io.h"
#include "io/temp_dir.h"
#include "tools/commands.h"
#include "util/serde.h"

namespace hopdb {
namespace {

/// Runs the CLI with the given argument strings; returns the exit code and
/// captures stdout/stderr.
int RunTool(std::vector<std::string> args, std::string* stdout_text = nullptr,
        std::string* stderr_text = nullptr) {
  args.insert(args.begin(), "hopdb_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  std::ostringstream out, err;
  const int code =
      RunCli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  if (stderr_text != nullptr) *stderr_text = err.str();
  return code;
}

TEST(CliTest, NoArgumentsPrintsUsageAndFails) {
  std::string err;
  EXPECT_EQ(RunTool({}, nullptr, &err), 1);
  EXPECT_NE(err.find("usage"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(RunTool({"help"}, &out), 0);
  EXPECT_NE(out.find("commands"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(RunTool({"frobnicate"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliTest, SubcommandHelpListsFlags) {
  std::string out;
  EXPECT_EQ(RunTool({"build", "--help"}, &out), 0);
  EXPECT_NE(out.find("--graph"), std::string::npos);
  EXPECT_NE(out.find("--mode"), std::string::npos);
}

TEST(CliTest, GenRequiresOut) {
  std::string err;
  EXPECT_EQ(RunTool({"gen"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST(CliTest, GenRejectsUnknownType) {
  TempDir dir = TempDir::Create("cli_test").ValueOrDie();
  std::string err;
  EXPECT_EQ(RunTool({"gen", "--type", "noexist", "--out", dir.File("g.txt")},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("unknown --type"), std::string::npos);
}

TEST(CliTest, FullPipelineTextGraph) {
  TempDir dir = TempDir::Create("cli_test").ValueOrDie();
  const std::string graph = dir.File("g.txt");
  const std::string index = dir.File("g.hli");

  std::string out;
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "800", "--avg-degree", "6",
                 "--seed", "5", "--out", graph},
                &out),
            0);
  EXPECT_NE(out.find("generated glp graph"), std::string::npos);

  ASSERT_EQ(RunTool({"build", "--graph", graph, "--mode", "hybrid", "--threads",
                 "2", "--out", index},
                &out),
            0);
  EXPECT_NE(out.find("built index"), std::string::npos);
  EXPECT_NE(out.find("iterations"), std::string::npos);

  ASSERT_EQ(RunTool({"query", "--index", index, "--src", "0", "--dst", "1"},
                &out),
            0);
  EXPECT_NE(out.find("dist(0, 1) = "), std::string::npos);

  ASSERT_EQ(RunTool({"query", "--index", index, "--random", "200"}, &out), 0);
  EXPECT_NE(out.find("200 random queries"), std::string::npos);

  ASSERT_EQ(RunTool({"stats", "--index", index}, &out), 0);
  EXPECT_NE(out.find("label entries"), std::string::npos);
  EXPECT_NE(out.find("avg |label|"), std::string::npos);
  EXPECT_NE(out.find("compressed"), std::string::npos);
}

TEST(CliTest, FullPipelineBinaryDirectedWeighted) {
  TempDir dir = TempDir::Create("cli_test").ValueOrDie();
  const std::string graph = dir.File("g.hgr");
  const std::string index = dir.File("g.hli");

  std::string out;
  ASSERT_EQ(RunTool({"gen", "--type", "er", "--n", "400", "--avg-degree", "4",
                 "--directed", "--weighted", "--seed", "8", "--out", graph},
                &out),
            0);
  // The binary graph file round-trips through the loader.
  auto edges = ReadBinaryGraph(graph);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->directed());
  EXPECT_TRUE(edges->weighted());

  ASSERT_EQ(RunTool({"build", "--graph", graph, "--order", "betweenness",
                 "--out", index},
                &out),
            0);
  ASSERT_EQ(RunTool({"query", "--index", index, "--random", "100"}, &out), 0);
}

TEST(CliTest, UpdateAppliesOpsOffline) {
  TempDir dir = TempDir::Create("cli_update").ValueOrDie();
  const std::string graph = dir.File("g.hgr");
  const std::string index = dir.File("g.hli");

  std::string out;
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "300", "--avg-degree",
                 "5", "--seed", "11", "--out", graph},
                &out),
            0);
  ASSERT_EQ(RunTool({"build", "--graph", graph, "--out", index}, &out), 0);

  // Insert edge {0, 1} (a no-op if the generator already placed it);
  // either way the repaired index must answer dist(0, 1) = 1.
  const std::string ops1 = dir.File("ops1.txt");
  ASSERT_TRUE(WriteStringToFile(ops1,
                                "# shortcut the pair\n"
                                "ADDEDGE 0 1\n")
                  .ok());
  const std::string index2 = dir.File("g2.hli");
  const std::string graph2 = dir.File("g2.hgr");
  ASSERT_EQ(RunTool({"update", "--index", index, "--graph", graph, "--ops",
                 ops1, "--out", index2, "--out-graph", graph2},
                &out),
            0);
  EXPECT_NE(out.find("applied"), std::string::npos) << out;
  EXPECT_NE(out.find("saved to"), std::string::npos);
  ASSERT_EQ(RunTool({"query", "--index", index2, "--src", "0", "--dst", "1"},
                &out),
            0);
  EXPECT_NE(out.find("dist(0, 1) = 1"), std::string::npos) << out;

  // Chain a second run off the updated pair of files: the delete is
  // guaranteed valid now, and the distance must grow past 1.
  const std::string ops2 = dir.File("ops2.txt");
  ASSERT_TRUE(WriteStringToFile(ops2, "DELEDGE 0 1\n").ok());
  const std::string index3 = dir.File("g3.hli");
  ASSERT_EQ(RunTool({"update", "--index", index2, "--graph", graph2, "--ops",
                 ops2, "--out", index3},
                &out),
            0);
  ASSERT_EQ(RunTool({"query", "--index", index3, "--src", "0", "--dst", "1"},
                &out),
            0);
  EXPECT_EQ(out.find("dist(0, 1) = 1\n"), std::string::npos) << out;
}

TEST(CliTest, UpdateRequiresFlagsAndValidOps) {
  TempDir dir = TempDir::Create("cli_update_err").ValueOrDie();
  std::string err;
  EXPECT_EQ(RunTool({"update"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--ops"), std::string::npos);

  const std::string graph = dir.File("g.hgr");
  const std::string index = dir.File("g.hli");
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "100", "--avg-degree",
                 "4", "--seed", "3", "--out", graph}),
            0);
  ASSERT_EQ(RunTool({"build", "--graph", graph, "--out", index}), 0);
  // A syntax error reports its line number and applies nothing.
  const std::string bad_ops = dir.File("bad.txt");
  ASSERT_TRUE(WriteStringToFile(bad_ops, "ADDEDGE 1 2\nFROB 3 4\n").ok());
  EXPECT_EQ(RunTool({"update", "--index", index, "--graph", graph, "--ops",
                 bad_ops},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  // Out-of-range ids are caught before any op is applied.
  const std::string oob_ops = dir.File("oob.txt");
  ASSERT_TRUE(WriteStringToFile(oob_ops, "ADDEDGE 0 5000\n").ok());
  EXPECT_EQ(RunTool({"update", "--index", index, "--graph", graph, "--ops",
                 oob_ops},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(CliTest, QueryRejectsOutOfRangeVertex) {
  TempDir dir = TempDir::Create("cli_test").ValueOrDie();
  const std::string graph = dir.File("g.txt");
  const std::string index = dir.File("g.hli");
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "300", "--out", graph}), 0);
  ASSERT_EQ(RunTool({"build", "--graph", graph, "--out", index}), 0);
  std::string err;
  EXPECT_EQ(RunTool({"query", "--index", index, "--src", "0", "--dst",
                 "999999"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(CliTest, BuildRejectsBadMode) {
  TempDir dir = TempDir::Create("cli_test").ValueOrDie();
  const std::string graph = dir.File("g.txt");
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "200", "--out", graph}), 0);
  std::string err;
  EXPECT_EQ(RunTool({"build", "--graph", graph, "--mode", "warp", "--out",
                 dir.File("i.hli")},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("unknown --mode"), std::string::npos);
}

TEST(CliTest, QueryMissingIndexFileFails) {
  std::string err;
  EXPECT_EQ(RunTool({"query", "--index", "/nonexistent/idx", "--random", "5"},
                nullptr, &err),
            1);
}

// All argument errors go through one usage-printing path: nonzero exit,
// the status message, and the subcommand's flag table on stderr.
TEST(CliTest, ArgumentErrorsPrintUsageWithFlagTable) {
  std::string err;
  // Missing required flag.
  EXPECT_EQ(RunTool({"gen"}, nullptr, &err), 1);
  EXPECT_NE(err.find("usage: hopdb_cli gen"), std::string::npos);
  EXPECT_NE(err.find("--out"), std::string::npos);
  EXPECT_NE(err.find("--avg-degree"), std::string::npos);

  // Flag given without its value.
  err.clear();
  EXPECT_EQ(RunTool({"build", "--graph"}, nullptr, &err), 1);
  EXPECT_NE(err.find("needs a value"), std::string::npos);
  EXPECT_NE(err.find("usage: hopdb_cli build"), std::string::npos);

  // Unknown flag.
  err.clear();
  EXPECT_EQ(RunTool({"query", "--frobnicate", "1"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
  EXPECT_NE(err.find("usage: hopdb_cli query"), std::string::npos);

  // Bad flag value surfaced by a subcommand parser.
  err.clear();
  EXPECT_EQ(RunTool({"serve"}, nullptr, &err), 1);
  EXPECT_NE(err.find("serve requires --index"), std::string::npos);
  EXPECT_NE(err.find("usage: hopdb_cli serve"), std::string::npos);
  EXPECT_NE(err.find("--cache-capacity"), std::string::npos);
}

TEST(CliTest, NonArgumentErrorsSkipTheFlagTable) {
  // A runtime (IO) failure reports the status but not the flag table.
  std::string err;
  EXPECT_EQ(RunTool({"query", "--index", "/nonexistent/idx", "--random", "5"},
                nullptr, &err),
            1);
  EXPECT_EQ(err.find("usage: hopdb_cli query"), std::string::npos);
}

TEST(CliTest, ClientRequiresPort) {
  std::string err;
  EXPECT_EQ(RunTool({"client", "--cmd", "PING"}, nullptr, &err), 1);
  EXPECT_NE(err.find("client requires --port"), std::string::npos);
}

TEST(CliTest, ClientFailsCleanlyWhenServerAbsent) {
  // Port 1 on loopback: connection refused, reported as an IO error
  // without the flag table.
  std::string err;
  EXPECT_EQ(RunTool({"client", "--port", "1", "--cmd", "PING"}, nullptr,
                &err),
            1);
  EXPECT_NE(err.find("connect"), std::string::npos);
}

TEST(CliTest, ServeHelpListsServingFlags) {
  std::string out;
  EXPECT_EQ(RunTool({"serve", "--help"}, &out), 0);
  EXPECT_NE(out.find("--cache-capacity"), std::string::npos);
  EXPECT_NE(out.find("--queue-capacity"), std::string::npos);
  EXPECT_NE(out.find("--batch"), std::string::npos);
  EXPECT_NE(out.find("repeatable"), std::string::npos);
}

TEST(CliTest, ConvertRoundTripIsQueryIdentical) {
  TempDir dir = TempDir::Create("cli_convert").ValueOrDie();
  const std::string graph = dir.File("g.txt");
  const std::string index = dir.File("g.hli");
  const std::string hli2 = dir.File("g.hli2");

  std::string out;
  ASSERT_EQ(RunTool({"gen", "--type", "glp", "--n", "400", "--avg-degree",
                     "5", "--seed", "9", "--out", graph}),
            0);
  ASSERT_EQ(RunTool({"build", "--graph", graph, "--out", index}), 0);
  // convert --verify (the default) checksums the arenas and cross-checks
  // sampled queries against the input index; a nonzero exit here means
  // the round trip broke.
  ASSERT_EQ(RunTool({"convert", "--in", index, "--out", hli2}, &out), 0);
  EXPECT_NE(out.find("converted"), std::string::npos);
  EXPECT_NE(out.find("verified arena checksum"), std::string::npos);
  EXPECT_NE(out.find("HLI2"), std::string::npos);
}

TEST(CliTest, ConvertRequiresInAndOut) {
  std::string err;
  EXPECT_EQ(RunTool({"convert"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--in"), std::string::npos);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST(CliTest, ConvertMissingInputFails) {
  TempDir dir = TempDir::Create("cli_convert_missing").ValueOrDie();
  std::string err;
  EXPECT_EQ(RunTool({"convert", "--in", dir.File("nope.hli"), "--out",
                     dir.File("out.hli2")},
                    nullptr, &err),
            1);
}

TEST(CliTest, ServeRejectsBadIndexSpecs) {
  std::string err;
  // No --index at all.
  EXPECT_EQ(RunTool({"serve"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--index"), std::string::npos);
  // Two defaults.
  EXPECT_EQ(RunTool({"serve", "--index", "/tmp/a.hli", "--index",
                     "/tmp/b.hli"},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("exactly one default"), std::string::npos);
  // Named index with an empty path.
  EXPECT_EQ(RunTool({"serve", "--index", "road="}, nullptr, &err), 1);
  EXPECT_NE(err.find("empty path"), std::string::npos);
  // Malformed name.
  EXPECT_EQ(RunTool({"serve", "--index", "/tmp/a.hli", "--index",
                     "bad/name=/tmp/b.hli"},
                    nullptr, &err),
            1);
  // Only named indexes, no default.
  EXPECT_EQ(RunTool({"serve", "--index", "one=/tmp/a.hli"}, nullptr, &err),
            1);
  EXPECT_NE(err.find("exactly one default"), std::string::npos);
  // Duplicate names fail at flag parsing, before any server starts.
  EXPECT_EQ(RunTool({"serve", "--index", "/tmp/a.hli", "--index",
                     "road=/tmp/b.hli", "--index", "road=/tmp/c.hli"},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("given more than once"), std::string::npos);
}

}  // namespace
}  // namespace hopdb
