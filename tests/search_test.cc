#include <gtest/gtest.h>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "search/bfs.h"
#include "search/bidirectional.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

TEST(BfsTest, PathGraphDistances) {
  auto g = CsrGraph::FromEdgeList(PathGraph(6));
  ASSERT_TRUE(g.ok());
  auto d = BfsDistances(*g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, DirectedRespectsOrientation) {
  auto g = CsrGraph::FromEdgeList(PathGraph(4, /*directed=*/true));
  ASSERT_TRUE(g.ok());
  auto fwd = BfsDistances(*g, 0);
  EXPECT_EQ(fwd[3], 3u);
  auto from3 = BfsDistances(*g, 3);
  EXPECT_EQ(from3[0], kInfDistance);
  auto bwd = BfsDistances(*g, 3, /*backward=*/true);
  EXPECT_EQ(bwd[0], 3u);
}

TEST(BfsTest, DisconnectedIsInfinite) {
  auto g = CsrGraph::FromEdgeList(TwoTriangles());
  ASSERT_TRUE(g.ok());
  auto d = BfsDistances(*g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[4], kInfDistance);
}

TEST(BfsTest, RunnerReusableAcrossSources) {
  auto g = CsrGraph::FromEdgeList(CycleGraph(8));
  ASSERT_TRUE(g.ok());
  BfsRunner runner(*g);
  runner.Run(0);
  EXPECT_EQ(runner.DistanceTo(4), 4u);
  runner.Run(2);
  EXPECT_EQ(runner.DistanceTo(4), 2u);
  EXPECT_EQ(runner.DistanceTo(0), 2u);
  // The reset must be complete: re-run source 0 and compare everything.
  runner.Run(0);
  auto ref = BfsDistances(*g, 0);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(runner.DistanceTo(v), ref[v]);
}

TEST(DijkstraTest, WeightedPath) {
  EdgeList e(4, /*directed=*/false);
  e.Add(0, 1, 10);
  e.Add(1, 2, 10);
  e.Add(0, 2, 5);
  e.Add(2, 3, 1);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto d = DijkstraDistances(*g, 0);
  EXPECT_EQ(d[1], 10u);
  EXPECT_EQ(d[2], 5u);
  EXPECT_EQ(d[3], 6u);
  EXPECT_EQ(DijkstraDistance(*g, 0, 3), 6u);
}

TEST(DijkstraTest, MatchesBfsOnUnweighted) {
  GlpOptions opt;
  opt.num_vertices = 800;
  opt.seed = 31;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  auto bfs = BfsDistances(*g, 5);
  auto dij = DijkstraDistances(*g, 5);
  EXPECT_EQ(bfs, dij);
}

TEST(DijkstraTest, BackwardDistances) {
  EdgeList e(3, /*directed=*/true);
  e.Add(0, 1, 2);
  e.Add(1, 2, 3);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  auto bwd = DijkstraDistances(*g, 2, /*backward=*/true);
  EXPECT_EQ(bwd[0], 5u);
  EXPECT_EQ(bwd[1], 3u);
}

class BidijParamTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, uint64_t>> {};

TEST_P(BidijParamTest, MatchesGroundTruthOnRandomGraphs) {
  auto [directed, weighted, seed] = GetParam();
  ErOptions opt;
  opt.num_vertices = 150;
  opt.num_edges = 400;
  opt.directed = directed;
  opt.seed = seed;
  auto edges = GenerateErdosRenyi(opt);
  ASSERT_TRUE(edges.ok());
  if (weighted) AssignUniformWeights(&*edges, 1, 9, seed + 1);
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());

  BidirectionalSearcher searcher(*g);
  Rng rng(seed + 2);
  for (int i = 0; i < 40; ++i) {
    VertexId s = static_cast<VertexId>(rng.Below(g->num_vertices()));
    auto truth = ExactDistances(*g, s);
    for (int j = 0; j < 10; ++j) {
      VertexId t = static_cast<VertexId>(rng.Below(g->num_vertices()));
      EXPECT_EQ(searcher.Query(s, t), truth[t])
          << "pair (" << s << ", " << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BidijParamTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(41, 42, 43)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param) ? "directed"
                                                       : "undirected") +
             (std::get<1>(param_info.param) ? "_weighted" : "_unweighted") +
             "_s" + std::to_string(std::get<2>(param_info.param));
    });

TEST(BidijTest, SelfQueryIsZero) {
  auto g = CsrGraph::FromEdgeList(CycleGraph(5));
  ASSERT_TRUE(g.ok());
  BidirectionalSearcher s(*g);
  EXPECT_EQ(s.Query(3, 3), 0u);
}

TEST(BidijTest, UnreachableIsInfinite) {
  auto g = CsrGraph::FromEdgeList(TwoTriangles());
  ASSERT_TRUE(g.ok());
  BidirectionalSearcher s(*g);
  EXPECT_EQ(s.Query(0, 5), kInfDistance);
  // And the searcher still works afterwards.
  EXPECT_EQ(s.Query(0, 2), 1u);
}

TEST(BidijTest, SettledWorkTracked) {
  GlpOptions opt;
  opt.num_vertices = 2000;
  opt.seed = 47;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  BidirectionalSearcher s(*g);
  s.Query(100, 200);
  EXPECT_GT(s.last_settled(), 0u);
}

}  // namespace
}  // namespace hopdb
