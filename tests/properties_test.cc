// Cross-method property suite: every distance method in the repository —
// HopDb (three modes), the external builder, the disk index, the
// bit-parallel index, PLL, IS-Label, HCL, and bidirectional search — must
// return exactly the BFS/Dijkstra ground truth on a sweep of random
// graphs (scale-free, uniform-random, directed, weighted, disconnected).
// Structural invariants of the labeling are checked alongside.

#include <gtest/gtest.h>

#include "baselines/hcl.h"
#include "baselines/is_label.h"
#include "baselines/pll.h"
#include "eval/verify.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/bit_parallel.h"
#include "labeling/builder.h"
#include "labeling/compressed_index.h"
#include "labeling/disk_index.h"
#include "labeling/external_builder.h"
#include "search/bidirectional.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

struct GraphCase {
  std::string name;
  bool directed;
  bool weighted;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<GraphCase>& info) {
  return info.param.name + (info.param.directed ? "_dir" : "_und") +
         (info.param.weighted ? "_wgt" : "_unw") + "_s" +
         std::to_string(info.param.seed);
}

EdgeList MakeGraph(const GraphCase& c) {
  EdgeList edges;
  if (c.name == "glp") {
    GlpOptions glp;
    glp.num_vertices = 260;
    glp.seed = c.seed;
    edges = c.directed ? GenerateDirectedGlp(glp).ValueOrDie()
                       : GenerateGlp(glp).ValueOrDie();
  } else if (c.name == "ba") {
    BaOptions ba;
    ba.num_vertices = 220;
    ba.edges_per_vertex = 2;
    ba.seed = c.seed;
    edges = GenerateBarabasiAlbert(ba).ValueOrDie();
    if (c.directed) {
      EdgeList directed(edges.num_vertices(), true);
      for (const Edge& e : edges.edges()) directed.Add(e.src, e.dst);
      directed.Normalize();
      edges = directed;
    }
  } else {  // er: includes disconnected pieces
    ErOptions er;
    er.num_vertices = 180;
    er.num_edges = 300;  // sparse: several components
    er.directed = c.directed;
    er.seed = c.seed;
    edges = GenerateErdosRenyi(er).ValueOrDie();
  }
  if (c.weighted) {
    AssignUniformWeights(&edges, 1, 9, DeriveSeed(c.seed, 3));
  }
  return edges;
}

class AllMethodsTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(AllMethodsTest, EveryMethodIsExact) {
  const GraphCase& c = GetParam();
  EdgeList edges = MakeGraph(c);
  auto base = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(base.ok());
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked_r = RelabelByRank(*base, mapping);
  ASSERT_TRUE(ranked_r.ok());
  const CsrGraph& g = *ranked_r;

  VerifyOptions verify;
  verify.sample_sources = 10;

  // --- HopDb, three modes.
  for (BuildMode mode : {BuildMode::kHopStepping, BuildMode::kHopDoubling,
                         BuildMode::kHybrid}) {
    BuildOptions opts;
    opts.mode = mode;
    auto out = BuildHopLabeling(g, opts);
    ASSERT_TRUE(out.ok()) << BuildModeName(mode);
    ASSERT_TRUE(out->index.Validate(/*ranked=*/true).ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return out->index.Query(s, t);
                    },
                    verify)
                    .ok())
        << "HopDb " << BuildModeName(mode);
  }

  // --- External builder + disk index.
  {
    auto dir = TempDir::Create("props");
    ASSERT_TRUE(dir.ok());
    ExternalBuildOptions ext;
    ext.scratch_dir = dir->path();
    ext.memory_budget_bytes = 1 << 18;  // small enough to exercise blocks
    auto out = BuildHopLabelingExternal(g, ext);
    ASSERT_TRUE(out.ok()) << out.status();
    auto idx = out->ToMemory(g);
    ASSERT_TRUE(idx.ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) { return idx->Query(s, t); },
                    verify)
                    .ok())
        << "external builder";
    std::string path = dir->File("d.hdi");
    ASSERT_TRUE(DiskIndex::Write(*idx, path).ok());
    auto disk = DiskIndex::Open(path);
    ASSERT_TRUE(disk.ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) { return disk->Query(s, t); },
                    verify)
                    .ok())
        << "disk index";
  }

  // --- Bit-parallel (undirected unweighted only).
  if (!c.directed && !c.weighted) {
    auto out = BuildHopLabeling(g, {});
    ASSERT_TRUE(out.ok());
    BitParallelOptions bp_opts;
    bp_opts.num_roots = 16;
    auto bp = BitParallelIndex::Transform(std::move(out->index), g, bp_opts);
    ASSERT_TRUE(bp.ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) { return bp->Query(s, t); },
                    verify)
                    .ok())
        << "bit-parallel";
  }

  // --- PLL.
  {
    auto out = BuildPll(g);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return out->index.Query(s, t);
                    },
                    verify)
                    .ok())
        << "PLL";
  }

  // --- IS-Label (full index).
  {
    auto out = BuildIsLabel(*base);  // no ranking needed
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_TRUE(VerifyExactDistances(
                    *base,
                    [&](VertexId s, VertexId t) {
                      return out->index.Query(s, t);
                    },
                    verify)
                    .ok())
        << "IS-Label";
  }

  // --- IS-Label partial mode (labels + residual Gk + bi-Dijkstra).
  {
    auto out = BuildIsLabelPartial(*base, /*num_levels=*/2);
    ASSERT_TRUE(out.ok()) << out.status();
    auto engine = IsLabelPartialIndex::Create(std::move(*out));
    ASSERT_TRUE(engine.ok()) << engine.status();
    EXPECT_TRUE(VerifyExactDistances(
                    *base,
                    [&](VertexId s, VertexId t) {
                      return engine->Query(s, t);
                    },
                    verify)
                    .ok())
        << "IS-Label partial";
  }

  // --- Compressed index (delta-varint form of the HopDb labels).
  {
    auto out = BuildHopLabeling(g, {});
    ASSERT_TRUE(out.ok());
    auto compressed = CompressedIndex::FromIndex(out->index);
    ASSERT_TRUE(compressed.ok()) << compressed.status();
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return compressed->Query(s, t);
                    },
                    verify)
                    .ok())
        << "compressed index";
  }

  // --- Parallel build (8 threads) answers like everything else.
  {
    BuildOptions opts;
    opts.num_threads = 8;
    auto out = BuildHopLabeling(g, opts);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return out->index.Query(s, t);
                    },
                    verify)
                    .ok())
        << "parallel build";
  }

  // --- HCL.
  {
    HclOptions opts;
    opts.core_size = 12;
    auto out = BuildHcl(g, opts);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return out->index.Query(s, t);
                    },
                    verify)
                    .ok())
        << "HCL";
  }

  // --- Bidirectional search.
  {
    BidirectionalSearcher searcher(g);
    EXPECT_TRUE(VerifyExactDistances(
                    g,
                    [&](VertexId s, VertexId t) {
                      return searcher.Query(s, t);
                    },
                    verify)
                    .ok())
        << "BIDIJ";
  }
}

std::vector<GraphCase> AllCases() {
  std::vector<GraphCase> cases;
  for (const char* name : {"glp", "ba", "er"}) {
    for (bool directed : {false, true}) {
      for (bool weighted : {false, true}) {
        for (uint64_t seed : {11ull, 12ull}) {
          cases.push_back({name, directed, weighted, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(GraphSweep, AllMethodsTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// --- Structural invariant: label entry distances are never below the
// true distance (every entry covers a real path), and surviving entries
// for canonical pairs are exact.
TEST(LabelInvariantTest, EntriesCoverRealPaths) {
  GlpOptions glp;
  glp.num_vertices = 200;
  glp.seed = 77;
  auto edges = GenerateDirectedGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto base = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(base.ok());
  RankMapping m = ComputeRanking(*base, RankingPolicy::kInOutProduct);
  auto ranked = RelabelByRank(*base, m);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < ranked->num_vertices(); ++v) {
    auto truth_fwd = ExactDistances(*ranked, v);           // v -> *
    for (const LabelEntry& e : out->index.OutLabel(v)) {
      EXPECT_GE(e.dist, truth_fwd[e.pivot]) << "entry covers a real path";
      EXPECT_EQ(e.dist, truth_fwd[e.pivot])
          << "unweighted surviving entries are exact";
    }
    auto truth_bwd = ExactDistances(*ranked, v, /*backward=*/true);
    for (const LabelEntry& e : out->index.InLabel(v)) {
      EXPECT_EQ(e.dist, truth_bwd[e.pivot]);
    }
  }
}

// --- The hitting-set claim (Table 7's foundation): on scale-free graphs
// a tiny fraction of top-ranked pivots covers the bulk of all entries.
TEST(LabelInvariantTest, TopPivotsCoverMostEntries) {
  GlpOptions glp;
  glp.num_vertices = 4000;
  glp.target_avg_degree = 6;
  glp.seed = 99;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto base = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(base.ok());
  RankMapping m = ComputeRanking(*base, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, m);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(out.ok());
  auto per_pivot = out->index.EntriesPerPivot();
  uint64_t total = out->index.TotalEntries();
  uint64_t top1pct = 0, top10pct = 0;
  for (VertexId v = 0; v < ranked->num_vertices() / 10; ++v) {
    if (v < ranked->num_vertices() / 100) top1pct += per_pivot[v];
    top10pct += per_pivot[v];
  }
  // Table 7 / Figure 8 shape: the top fraction of ranked vertices carries
  // the bulk of the entries (the paper's datasets need 0.6%-7.6% of
  // vertices for 70% coverage; this 4K-vertex stand-in is smaller, so we
  // assert the conservative envelope).
  EXPECT_GT(static_cast<double>(top1pct), 0.50 * static_cast<double>(total));
  EXPECT_GT(static_cast<double>(top10pct), 0.85 * static_cast<double>(total));
}

}  // namespace
}  // namespace hopdb
