// Concurrent-read correctness: many threads hammering one shared
// HopDbIndex (the guarantee documented on HopDbIndex::Query), and a full
// server stress with concurrent TCP clients racing a RELOAD hot-swap —
// every answer cross-checked against the BFS/Dijkstra oracle. Run under
// TSan (cmake --preset tsan) this is the race detector for the whole
// serving subsystem.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "hopdb.h"
#include "io/temp_dir.h"
#include "labeling/mapped_index.h"
#include "search/dijkstra.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

EdgeList MakeGraph(VertexId n, double avg_degree, uint64_t seed,
                   bool weighted) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = avg_degree;
  options.seed = seed;
  EdgeList edges = GenerateGlp(options).ValueOrDie();
  if (weighted) AssignUniformWeights(&edges, 1, 9, DeriveSeed(seed, 41));
  return edges;
}

/// truth[s] = exact distances from s to every vertex.
std::vector<std::vector<Distance>> FullOracle(const CsrGraph& graph) {
  std::vector<std::vector<Distance>> truth(graph.num_vertices());
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    truth[s] = ExactDistances(graph, s);
  }
  return truth;
}

// N threads, one shared index, every answer oracle-checked. No locks in
// the read path — under TSan this verifies the concurrent-reader
// guarantee the facade documents.
void HammerSharedIndex(bool weighted) {
  constexpr VertexId kN = 250;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4000;

  const EdgeList edges = MakeGraph(kN, 5.0, weighted ? 31 : 13, weighted);
  const CsrGraph graph = CsrGraph::FromEdgeList(edges).ValueOrDie();
  const HopDbIndex index = HopDbIndex::Build(graph).ValueOrDie();
  const std::vector<std::vector<Distance>> truth = FullOracle(graph);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const VertexId s = static_cast<VertexId>(rng.Below(kN));
        const VertexId t = static_cast<VertexId>(rng.Below(kN));
        if (index.Query(s, t) != truth[s][t]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentQueryTest, SharedIndexUnweighted) { HammerSharedIndex(false); }

TEST(ConcurrentQueryTest, SharedIndexWeighted) { HammerSharedIndex(true); }

// Full serving stack under fire: concurrent TCP clients (DIST + BATCH)
// while the main thread hot-swaps between two indexes over the same
// vertex set. Every response must exactly match one of the two oracles —
// a torn swap, a stale cache entry, or a cross-snapshot mix would
// produce a distance neither graph has.
TEST(ConcurrentQueryTest, ServerStressWithRacingHotSwap) {
  constexpr VertexId kN = 200;
  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 300;
  constexpr int kReloads = 8;

  const EdgeList edges_a = MakeGraph(kN, 5.0, /*seed=*/71, false);
  const EdgeList edges_b = MakeGraph(kN, 4.0, /*seed=*/72, false);
  const CsrGraph graph_a = CsrGraph::FromEdgeList(edges_a).ValueOrDie();
  const CsrGraph graph_b = CsrGraph::FromEdgeList(edges_b).ValueOrDie();
  const auto truth_a = FullOracle(graph_a);
  const auto truth_b = FullOracle(graph_b);

  auto tmp = TempDir::Create("concurrent_query_test");
  ASSERT_TRUE(tmp.ok());
  const std::string path_a = tmp->File("a.hli");
  const std::string path_b = tmp->File("b.hli");
  ASSERT_TRUE(HopDbIndex::Build(graph_a).ValueOrDie().Save(path_a).ok());
  ASSERT_TRUE(HopDbIndex::Build(graph_b).ValueOrDie().Save(path_b).ok());

  ServerOptions options;
  options.num_workers = 4;
  options.cache_capacity = 256;  // small: exercise eviction under load
  options.queue_capacity = 64;   // small: exercise producer backpressure
  options.source_path = path_a;
  auto server = DistanceServer::Start(
                    HopDbIndex::Load(path_a).ValueOrDie(), options)
                    .ValueOrDie();
  const uint16_t port = server->port();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  auto check_pair = [&](VertexId s, VertexId t, Distance got) {
    if (got != truth_a[s][t] && got != truth_b[s][t]) {
      failures.fetch_add(1);
    }
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = DistanceClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(5000 + c);
      for (int i = 0; i < kQueriesPerClient && !done.load(); ++i) {
        const VertexId s = static_cast<VertexId>(rng.Below(kN));
        if (i % 10 == 9) {
          // Mixed-in BATCH traffic.
          VertexId t0 = static_cast<VertexId>(rng.Below(kN));
          VertexId t1 = static_cast<VertexId>(rng.Below(kN));
          VertexId t2 = static_cast<VertexId>(rng.Below(kN));
          VertexId t3 = static_cast<VertexId>(rng.Below(kN));
          auto response = client->RoundTrip(
              "BATCH " + std::to_string(s) + " " + std::to_string(t0) + " " +
              std::to_string(t1) + " " + std::to_string(t2) + " " +
              std::to_string(t3));
          if (!response.ok() || !StartsWith(*response, "OK ")) {
            failures.fetch_add(1);
            break;
          }
          const std::vector<std::string> tokens =
              SplitString(response->substr(3), ' ');
          if (tokens.size() != 4) {
            failures.fetch_add(1);
            break;
          }
          const VertexId targets[4] = {t0, t1, t2, t3};
          for (int j = 0; j < 4; ++j) {
            auto d = ParseDistanceToken(tokens[j]);
            if (!d.ok()) {
              failures.fetch_add(1);
              break;
            }
            check_pair(s, targets[j], *d);
          }
        } else {
          const VertexId t = static_cast<VertexId>(rng.Below(kN));
          auto d = client->QueryDistance(s, t);
          if (!d.ok()) {
            failures.fetch_add(1);
            break;
          }
          check_pair(s, t, *d);
        }
      }
    });
  }

  // Race hot-swaps against the query storm, alternating A <-> B.
  for (int r = 0; r < kReloads; ++r) {
    const Status status = server->Reload(r % 2 == 0 ? path_b : path_a);
    EXPECT_TRUE(status.ok()) << status;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }

  for (auto& t : clients) t.join();
  done.store(true);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->metrics().reloads(), static_cast<uint64_t>(kReloads));
  // The storm actually exercised the serving path.
  EXPECT_GT(server->metrics().dist_queries(), 0u);
  server->Stop();
}

// RELOAD issued through the wire while other clients query: the swap
// must be observed atomically (every client sees old or new, never a
// blend). Uses different vertex counts so "which index answered" is
// directly observable through out-of-range errors.
TEST(ConcurrentQueryTest, WireReloadChangesVertexCountAtomically) {
  const EdgeList small = MakeGraph(80, 4.0, /*seed=*/81, false);
  const EdgeList big = MakeGraph(160, 4.0, /*seed=*/82, false);
  const CsrGraph graph_small = CsrGraph::FromEdgeList(small).ValueOrDie();
  const CsrGraph graph_big = CsrGraph::FromEdgeList(big).ValueOrDie();
  const auto truth_small = FullOracle(graph_small);
  const auto truth_big = FullOracle(graph_big);

  auto tmp = TempDir::Create("concurrent_query_test");
  ASSERT_TRUE(tmp.ok());
  const std::string path_small = tmp->File("small.hli");
  const std::string path_big = tmp->File("big.hli");
  ASSERT_TRUE(
      HopDbIndex::Build(graph_small).ValueOrDie().Save(path_small).ok());
  ASSERT_TRUE(HopDbIndex::Build(graph_big).ValueOrDie().Save(path_big).ok());

  ServerOptions options;
  options.num_workers = 2;
  options.source_path = path_small;
  auto server = DistanceServer::Start(
                    HopDbIndex::Load(path_small).ValueOrDie(), options)
                    .ValueOrDie();

  std::atomic<int> failures{0};
  std::thread querier([&] {
    auto client = DistanceClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) {
      failures.fetch_add(1);
      return;
    }
    Rng rng(91);
    for (int i = 0; i < 400; ++i) {
      const VertexId s = static_cast<VertexId>(rng.Below(160));
      const VertexId t = static_cast<VertexId>(rng.Below(160));
      auto response = client->RoundTrip("DIST " + std::to_string(s) + " " +
                                        std::to_string(t));
      if (!response.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (StartsWith(*response, "ERR ")) {
        // Acceptable only as an out-of-range answer from the small index.
        if (response->find("out of range") == std::string::npos ||
            (s < 80 && t < 80)) {
          failures.fetch_add(1);
        }
        continue;
      }
      auto d = ParseDistanceToken(response->substr(3));
      if (!d.ok()) {
        failures.fetch_add(1);
        return;
      }
      const bool matches_small =
          s < 80 && t < 80 && *d == truth_small[s][t];
      const bool matches_big = *d == truth_big[s][t];
      if (!matches_small && !matches_big) failures.fetch_add(1);
    }
  });

  std::thread swapper([&] {
    auto client = DistanceClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) {
      failures.fetch_add(1);
      return;
    }
    for (int r = 0; r < 6; ++r) {
      auto response = client->RoundTrip(
          "RELOAD " + (r % 2 == 0 ? path_big : path_small));
      if (!response.ok() || !StartsWith(*response, "OK ")) {
        failures.fetch_add(1);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  querier.join();
  swapper.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent queries racing DETACH/re-ATTACH of an mmap-backed index:
// a routed answer must be either a correct distance from the attached
// snapshot or a clean "no index named" error — never a crash, a hang,
// or a wrong distance (a worker that resolved the snapshot before the
// DETACH legitimately finishes on it; the mapping must stay alive until
// that last reference drops).
TEST(ConcurrentQueryTest, ConcurrentQueriesDuringDetach) {
  constexpr VertexId kN = 150;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 250;
  constexpr int kCycles = 10;

  const EdgeList edges_a = MakeGraph(kN, 5.0, /*seed=*/61, false);
  const EdgeList edges_x = MakeGraph(kN, 4.0, /*seed=*/62, false);
  const CsrGraph graph_x = CsrGraph::FromEdgeList(edges_x).ValueOrDie();
  const auto truth_x = FullOracle(graph_x);

  auto tmp = TempDir::Create("detach_race").ValueOrDie();
  HopDbIndex index_x = HopDbIndex::Build(graph_x).ValueOrDie();
  const std::string path_x = tmp.File("x.hli2");
  ASSERT_TRUE(MappedIndex::Write(index_x.label_index(), index_x.ranking(),
                                 path_x)
                  .ok());

  ServerOptions options;
  options.num_workers = 3;
  options.cache_capacity = 256;
  auto server =
      DistanceServer::Start(HopDbIndex::Build(edges_a).ValueOrDie(), options)
          .ValueOrDie();
  ASSERT_TRUE(server->AttachIndex("extra", path_x).ok());

  std::atomic<int> failures{0};
  std::atomic<uint64_t> ok_answers{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = DistanceClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(500 + c);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const VertexId s = static_cast<VertexId>(rng.Below(kN));
        const VertexId t = static_cast<VertexId>(rng.Below(kN));
        auto response = client->RoundTrip("USE extra DIST " +
                                          std::to_string(s) + " " +
                                          std::to_string(t));
        if (!response.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (StartsWith(*response, "OK ")) {
          auto d = ParseDistanceToken(response->substr(3));
          if (!d.ok() || *d != truth_x[s][t]) {
            failures.fetch_add(1);
            return;
          }
          ok_answers.fetch_add(1);
        } else if (response->find("no index named") == std::string::npos) {
          failures.fetch_add(1);  // only the detach window may error
          return;
        }
      }
    });
  }

  for (int r = 0; r < kCycles; ++r) {
    ASSERT_TRUE(server->DetachIndex("extra").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(server->AttachIndex("extra", path_x).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The storm actually got routed answers (the windows are short).
  EXPECT_GT(ok_answers.load(), 0u);
  server->Stop();
}

}  // namespace
}  // namespace hopdb
