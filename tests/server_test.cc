// Serving subsystem units and end-to-end coverage: protocol parsing,
// the bounded MPMC queue, the sharded LRU result cache, the latency
// histogram, and a real DistanceServer answering every verb over
// loopback TCP (including RELOAD hot-swap semantics and cache
// coherence across swaps).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "graph/graph_io.h"
#include "hopdb.h"
#include "labeling/mapped_index.h"
#include "query/knn.h"
#include "query/path.h"
#include "search/dijkstra.h"
#include "server/client.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/request_queue.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "server/trace.h"
#include "io/temp_dir.h"
#include "util/log.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesDist) {
  auto r = ParseRequest("DIST 3 17");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->kind, RequestKind::kDist);
  EXPECT_EQ(r->src, 3u);
  ASSERT_EQ(r->targets.size(), 1u);
  EXPECT_EQ(r->targets[0], 17u);
}

TEST(ProtocolTest, ParsesBatchAndKnnAndControl) {
  auto batch = ParseRequest("BATCH 5 1 2 3");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->kind, RequestKind::kBatch);
  EXPECT_EQ(batch->src, 5u);
  EXPECT_EQ(batch->targets, (std::vector<VertexId>{1, 2, 3}));

  auto knn = ParseRequest("KNN 9 4");
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->kind, RequestKind::kKnn);
  EXPECT_EQ(knn->src, 9u);
  EXPECT_EQ(knn->k, 4u);

  EXPECT_EQ(ParseRequest("STATS")->kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("PING")->kind, RequestKind::kPing);

  auto reload = ParseRequest("RELOAD /tmp/x.hli");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->kind, RequestKind::kReload);
  EXPECT_EQ(reload->path, "/tmp/x.hli");
  EXPECT_TRUE(ParseRequest("RELOAD")->path.empty());
}

TEST(ProtocolTest, ParsesWithinReachPath) {
  auto within = ParseRequest("WITHIN 5 3");
  ASSERT_TRUE(within.ok());
  EXPECT_EQ(within->kind, RequestKind::kWithin);
  EXPECT_EQ(within->src, 5u);
  EXPECT_EQ(within->k, 3u);  // radius rides the k field

  auto reach = ParseRequest("REACH 5 9 4");
  ASSERT_TRUE(reach.ok());
  EXPECT_EQ(reach->kind, RequestKind::kReach);
  EXPECT_EQ(reach->src, 5u);
  ASSERT_EQ(reach->targets.size(), 1u);
  EXPECT_EQ(reach->targets[0], 9u);
  EXPECT_EQ(reach->k, 4u);  // bound rides the k field

  auto path = ParseRequest("PATH 5 9");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->kind, RequestKind::kPath);
  EXPECT_EQ(path->src, 5u);
  ASSERT_EQ(path->targets.size(), 1u);
  EXPECT_EQ(path->targets[0], 9u);

  // Routed forms.
  auto routed = ParseRequest("USE road WITHIN 1 2");
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->index_name, "road");
  EXPECT_EQ(ParseRequest("USE road REACH 1 2 3")->index_name, "road");
  EXPECT_EQ(ParseRequest("USE road PATH 1 2")->index_name, "road");

  // Arity and token errors are client-safe InvalidArgument lines.
  EXPECT_FALSE(ParseRequest("WITHIN 5").ok());
  EXPECT_FALSE(ParseRequest("WITHIN 5 3 4").ok());
  EXPECT_FALSE(ParseRequest("WITHIN a 3").ok());
  EXPECT_FALSE(ParseRequest("REACH 5 9").ok());
  EXPECT_FALSE(ParseRequest("REACH 5 9 4 1").ok());
  EXPECT_FALSE(ParseRequest("REACH 5 x 4").ok());
  EXPECT_FALSE(ParseRequest("PATH 5").ok());
  EXPECT_FALSE(ParseRequest("PATH 5 9 2").ok());
}

TEST(ProtocolTest, ParsesAttachDetachUse) {
  auto attach = ParseRequest("ATTACH road /data/road.hli2");
  ASSERT_TRUE(attach.ok()) << attach.status();
  EXPECT_EQ(attach->kind, RequestKind::kAttach);
  EXPECT_EQ(attach->index_name, "road");
  EXPECT_EQ(attach->path, "/data/road.hli2");

  auto detach = ParseRequest("DETACH road");
  ASSERT_TRUE(detach.ok());
  EXPECT_EQ(detach->kind, RequestKind::kDetach);
  EXPECT_EQ(detach->index_name, "road");

  auto used_dist = ParseRequest("USE road DIST 3 17");
  ASSERT_TRUE(used_dist.ok()) << used_dist.status();
  EXPECT_EQ(used_dist->kind, RequestKind::kDist);
  EXPECT_EQ(used_dist->index_name, "road");
  EXPECT_EQ(used_dist->src, 3u);
  EXPECT_EQ(used_dist->targets[0], 17u);

  auto used_batch = ParseRequest("USE g2 BATCH 5 1 2");
  ASSERT_TRUE(used_batch.ok());
  EXPECT_EQ(used_batch->kind, RequestKind::kBatch);
  EXPECT_EQ(used_batch->index_name, "g2");

  auto used_knn = ParseRequest("USE g2 KNN 9 4");
  ASSERT_TRUE(used_knn.ok());
  EXPECT_EQ(used_knn->kind, RequestKind::kKnn);
  EXPECT_EQ(used_knn->index_name, "g2");

  auto used_reload = ParseRequest("USE g2 RELOAD /x.hli2");
  ASSERT_TRUE(used_reload.ok());
  EXPECT_EQ(used_reload->kind, RequestKind::kReload);
  EXPECT_EQ(used_reload->index_name, "g2");
  EXPECT_EQ(used_reload->path, "/x.hli2");

  // An unprefixed request targets the default index.
  EXPECT_TRUE(ParseRequest("DIST 1 2")->index_name.empty());
}

TEST(ProtocolTest, ParsesEdgeUpdateVerbs) {
  auto add = ParseRequest("ADDEDGE 3 17");
  ASSERT_TRUE(add.ok()) << add.status();
  EXPECT_EQ(add->kind, RequestKind::kAddEdge);
  EXPECT_EQ(add->src, 3u);
  ASSERT_EQ(add->targets.size(), 1u);
  EXPECT_EQ(add->targets[0], 17u);
  EXPECT_EQ(add->k, 1u);  // default weight

  auto weighted = ParseRequest("ADDEDGE 3 17 5");
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted->k, 5u);

  auto del = ParseRequest("DELEDGE 3 17");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, RequestKind::kDelEdge);
  EXPECT_EQ(del->src, 3u);
  EXPECT_EQ(del->targets[0], 17u);

  auto commit = ParseRequest("COMMIT");
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->kind, RequestKind::kCommit);

  // All three route through USE.
  auto routed = ParseRequest("USE road ADDEDGE 1 2 9");
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_EQ(routed->kind, RequestKind::kAddEdge);
  EXPECT_EQ(routed->index_name, "road");
  EXPECT_EQ(routed->k, 9u);
  EXPECT_EQ(ParseRequest("USE road DELEDGE 1 2")->index_name, "road");
  EXPECT_EQ(ParseRequest("USE road COMMIT")->index_name, "road");
}

TEST(ProtocolTest, RejectsMalformedEdgeUpdateVerbs) {
  EXPECT_FALSE(ParseRequest("ADDEDGE 1").ok());
  EXPECT_FALSE(ParseRequest("ADDEDGE 1 2 3 4").ok());
  EXPECT_FALSE(ParseRequest("ADDEDGE 1 2 0").ok());  // zero weight
  EXPECT_FALSE(ParseRequest("ADDEDGE 1 2 x").ok());
  EXPECT_FALSE(ParseRequest("ADDEDGE a 2").ok());
  EXPECT_FALSE(ParseRequest("DELEDGE 1").ok());
  EXPECT_FALSE(ParseRequest("DELEDGE 1 2 3").ok());
  EXPECT_FALSE(ParseRequest("COMMIT now").ok());
}

TEST(ProtocolTest, RejectsMalformedUseAttachDetach) {
  EXPECT_FALSE(ParseRequest("ATTACH road").ok());
  EXPECT_FALSE(ParseRequest("ATTACH road p q").ok());
  EXPECT_FALSE(ParseRequest("DETACH").ok());
  EXPECT_FALSE(ParseRequest("DETACH a b").ok());
  EXPECT_FALSE(ParseRequest("USE road").ok());
  EXPECT_FALSE(ParseRequest("USE road STATS").ok());
  EXPECT_FALSE(ParseRequest("USE road PING").ok());
  EXPECT_FALSE(ParseRequest("USE road ATTACH x y").ok());
  EXPECT_FALSE(ParseRequest("USE a USE b DIST 1 2").ok());  // no nesting
}

TEST(ProtocolTest, ToleratesExtraWhitespace) {
  auto r = ParseRequest("  DIST \t 1    2 ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->src, 1u);
  EXPECT_EQ(r->targets[0], 2u);
}

TEST(ProtocolTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("FROB 1 2").ok());
  EXPECT_FALSE(ParseRequest("DIST 1").ok());
  EXPECT_FALSE(ParseRequest("DIST 1 2 3").ok());
  EXPECT_FALSE(ParseRequest("DIST x 2").ok());
  EXPECT_FALSE(ParseRequest("DIST -1 2").ok());
  EXPECT_FALSE(ParseRequest("BATCH 1").ok());
  EXPECT_FALSE(ParseRequest("KNN 1 0").ok());
  EXPECT_FALSE(ParseRequest("KNN 1 k").ok());
  // 2^32 must not truncate to k=0 (and 2^32+3 not to k=3).
  EXPECT_FALSE(ParseRequest("KNN 1 4294967296").ok());
  EXPECT_FALSE(ParseRequest("KNN 1 4294967299").ok());
  EXPECT_FALSE(ParseRequest("STATS now").ok());
}

TEST(ProtocolTest, FormatsResponses) {
  EXPECT_EQ(FormatDistance(7), "7");
  EXPECT_EQ(FormatDistance(kInfDistance), "INF");
  EXPECT_EQ(OkResponse(""), "OK");
  EXPECT_EQ(OkResponse("pong"), "OK pong");
  EXPECT_EQ(ErrResponse("multi\nline"), "ERR multi line");
  EXPECT_EQ(FormatBatchResponse({1, kInfDistance, 3}), "OK 1 INF 3");
  EXPECT_EQ(FormatKnnResponse({{4, 1}, {9, 2}}), "OK 4:1 9:2");
}

TEST(ProtocolTest, DistanceTokenRoundTrip) {
  EXPECT_EQ(*ParseDistanceToken("INF"), kInfDistance);
  EXPECT_EQ(*ParseDistanceToken("42"), 42u);
  EXPECT_FALSE(ParseDistanceToken("4x2").ok());
}

TEST(ProtocolTest, FormatRequestV1RoundTrips) {
  for (const char* line :
       {"DIST 3 17", "BATCH 5 1 2 3", "KNN 9 4", "STATS", "PING", "RELOAD",
        "RELOAD /tmp/x.hli", "ATTACH road /data/road.hli2", "DETACH road",
        "USE road DIST 3 17", "USE g2 BATCH 5 1 2", "USE g2 KNN 9 4",
        "USE g2 RELOAD /x.hli2", "ADDEDGE 3 17", "ADDEDGE 3 17 5",
        "DELEDGE 3 17", "COMMIT", "USE road ADDEDGE 1 2 9",
        "USE road DELEDGE 1 2", "USE road COMMIT"}) {
    auto parsed = ParseRequest(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(FormatRequestV1(*parsed), line);
  }
}

TEST(ProtocolTest, BusyResponseIsDistinctRetryableError) {
  EXPECT_EQ(BusyResponse("work queue full"), "ERR BUSY work queue full");
  // v1 rendering of the wire-level BUSY status carries the same marker.
  EXPECT_TRUE(StartsWith(EncodeResponseV1(WireBusy()), "ERR BUSY "));
}

// ---------------------------------------------------------------------------
// WireResponse + binary protocol v2
// ---------------------------------------------------------------------------

TEST(WireResponseTest, V1EncodingMatchesLegacyFormatters) {
  EXPECT_EQ(EncodeResponseV1(WireOk("pong")), OkResponse("pong"));
  EXPECT_EQ(EncodeResponseV1(WireOk("")), OkResponse(""));
  EXPECT_EQ(EncodeResponseV1(WireErr("bad vertex")), ErrResponse("bad vertex"));
  EXPECT_EQ(EncodeResponseV1(WireDistanceResponse(7)),
            OkResponse(FormatDistance(7)));
  EXPECT_EQ(EncodeResponseV1(WireDistanceResponse(kInfDistance)),
            OkResponse("INF"));
  EXPECT_EQ(EncodeResponseV1(WireDistancesResponse({1, kInfDistance, 3})),
            FormatBatchResponse({1, kInfDistance, 3}));
  EXPECT_EQ(EncodeResponseV1(WireNeighborsResponse({{4, 1}, {9, 2}})),
            FormatKnnResponse({{4, 1}, {9, 2}}));
}

/// Round-trips one request through the v2 encoder and parser.
Request V2RequestRoundTrip(const Request& request) {
  std::string frame;
  EncodeRequestV2(request, &frame);
  size_t consumed = 0;
  Request out;
  std::string error;
  const FrameParse verdict = ParseRequestFrameV2(frame.data(), frame.size(),
                                                 &consumed, &out, &error);
  EXPECT_EQ(verdict, FrameParse::kDone) << error;
  EXPECT_EQ(consumed, frame.size());
  return out;
}

TEST(ProtocolV2Test, RequestFramesRoundTrip) {
  for (const char* line :
       {"DIST 3 17", "BATCH 5 1 2 3", "KNN 9 4", "STATS", "PING", "RELOAD",
        "RELOAD /tmp/x.hli", "ATTACH road /data/road.hli2", "DETACH road",
        "USE road DIST 3 17", "USE g2 BATCH 5 1 2", "USE g2 KNN 9 4",
        "USE g2 RELOAD /x.hli2", "ADDEDGE 3 17", "ADDEDGE 3 17 5",
        "DELEDGE 3 17", "COMMIT", "USE road ADDEDGE 1 2 9",
        "USE road DELEDGE 1 2", "USE road COMMIT"}) {
    const Request request = ParseRequest(line).ValueOrDie();
    const Request round = V2RequestRoundTrip(request);
    // The v1 rendering is a canonical form covering every field.
    EXPECT_EQ(FormatRequestV1(round), line);
  }
}

TEST(ProtocolV2Test, ResponseFramesRoundTrip) {
  const std::vector<WireResponse> cases = {
      WireOk("pong"),
      WireOk(""),
      WireErr("vertex id out of range (|V|=10)"),
      WireBusy(),
      WireDistanceResponse(7),
      WireDistanceResponse(kInfDistance),
      WireDistancesResponse({1, kInfDistance, 3}),
      WireDistancesResponse({}),
      WireNeighborsResponse({{4, 1}, {9, 2}}),
      WireNeighborsResponse({}),
  };
  for (const WireResponse& response : cases) {
    std::string frame;
    EncodeResponseV2(response, &frame);
    size_t consumed = 0;
    WireResponse out;
    std::string error;
    ASSERT_EQ(ParseResponseFrameV2(frame.data(), frame.size(), &consumed,
                                   &out, &error),
              FrameParse::kDone)
        << error;
    EXPECT_EQ(consumed, frame.size());
    // The shared v1 rendering is a full content comparison.
    EXPECT_EQ(EncodeResponseV1(out), EncodeResponseV1(response));
    EXPECT_EQ(out.status, response.status);
    EXPECT_EQ(out.payload, response.payload);
  }
}

TEST(ProtocolV2Test, TruncatedFramesWantMoreBytes) {
  Request request = ParseRequest("BATCH 5 1 2 3").ValueOrDie();
  std::string frame;
  EncodeRequestV2(request, &frame);
  // Every proper prefix must come back kNeedMore, never kError: a slow
  // (or hostile slow-loris) writer is indistinguishable from a fast one
  // mid-frame.
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t consumed = 0;
    Request out;
    std::string error;
    EXPECT_EQ(ParseRequestFrameV2(frame.data(), len, &consumed, &out, &error),
              FrameParse::kNeedMore)
        << "len=" << len;
  }
}

TEST(ProtocolV2Test, MalformedFramesAreRejected) {
  auto parse = [](std::string frame) {
    size_t consumed = 0;
    Request out;
    std::string error;
    return ParseRequestFrameV2(frame.data(), frame.size(), &consumed, &out,
                               &error);
  };
  // Unknown opcode.
  std::string frame(kV2RequestHeaderBytes, '\0');
  frame[0] = '\x7f';
  EXPECT_EQ(parse(frame), FrameParse::kError);
  // Nonzero reserved byte.
  std::string ping;
  EncodeRequestV2(ParseRequest("PING").ValueOrDie(), &ping);
  std::string bad_reserved = ping;
  bad_reserved[1] = '\x01';
  EXPECT_EQ(parse(bad_reserved), FrameParse::kError);
  // DIST with trailing payload bytes it must not have.
  std::string dist;
  EncodeRequestV2(ParseRequest("DIST 1 2").ValueOrDie(), &dist);
  std::string bad_aux = dist;
  bad_aux[4] = '\x04';  // aux_len = 4
  bad_aux += "????";
  EXPECT_EQ(parse(bad_aux), FrameParse::kError);
  // BATCH whose count disagrees with its payload length.
  std::string batch;
  EncodeRequestV2(ParseRequest("BATCH 1 2 3").ValueOrDie(), &batch);
  std::string bad_count = batch;
  bad_count[12] = '\x07';  // arg (target count) = 7, aux still 2 targets
  EXPECT_EQ(parse(bad_count), FrameParse::kError);
  // ADDEDGE aux must be exactly the 4-byte weight.
  std::string add;
  EncodeRequestV2(ParseRequest("ADDEDGE 1 2 5").ValueOrDie(), &add);
  std::string bad_add_aux = add;
  bad_add_aux[4] = '\x00';  // aux_len = 0: weight missing
  bad_add_aux.resize(kV2RequestHeaderBytes);
  EXPECT_EQ(parse(bad_add_aux), FrameParse::kError);
  // ...and a zero weight is rejected at the frame layer, like v1.
  std::string bad_weight = add;
  bad_weight[kV2RequestHeaderBytes + 0] = '\x00';
  bad_weight[kV2RequestHeaderBytes + 1] = '\x00';
  bad_weight[kV2RequestHeaderBytes + 2] = '\x00';
  bad_weight[kV2RequestHeaderBytes + 3] = '\x00';
  EXPECT_EQ(parse(bad_weight), FrameParse::kError);
  // DELEDGE carries no aux payload.
  std::string del;
  EncodeRequestV2(ParseRequest("DELEDGE 1 2").ValueOrDie(), &del);
  std::string bad_del = del;
  bad_del[4] = '\x04';
  bad_del += "????";
  EXPECT_EQ(parse(bad_del), FrameParse::kError);
  // COMMIT is bare: src/arg must be zero.
  std::string commit;
  EncodeRequestV2(ParseRequest("COMMIT").ValueOrDie(), &commit);
  std::string bad_commit = commit;
  bad_commit[8] = '\x01';  // src = 1
  EXPECT_EQ(parse(bad_commit), FrameParse::kError);
  // A frame claiming more payload than the 1 MiB cap is rejected from
  // the header alone (nothing that large is ever buffered).
  std::string huge(kV2RequestHeaderBytes, '\0');
  huge[0] = '\x06';  // RELOAD
  huge[4] = '\xff';
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\x7f';  // aux_len = 0x7fffffff
  EXPECT_EQ(parse(huge), FrameParse::kError);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoAndBatchPop) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 0);
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 10), 4u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3, 4}));
}

TEST(BoundedQueueTest, CloseDrainsThenRefuses) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.Pop(&v));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 4), 0u);
}

TEST(BoundedQueueTest, BlockedProducerUnblocksOnPop) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.Push(2)); });
  // Give the producer a chance to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueueTest, TryPushNeverBlocksAndReportsWhy) {
  using IntQueue = BoundedQueue<int>;
  IntQueue q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_EQ(q.TryPush(&a), IntQueue::PushResult::kOk);
  EXPECT_EQ(q.TryPush(&b), IntQueue::PushResult::kOk);
  // Full is reported immediately — no blocking — and the item stays
  // with the caller so it can be answered BUSY inline.
  EXPECT_EQ(q.TryPush(&c), IntQueue::PushResult::kFull);
  EXPECT_EQ(c, 3);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(q.TryPush(&c), IntQueue::PushResult::kOk);
  q.Close();
  int d = 4;
  EXPECT_EQ(q.TryPush(&d), IntQueue::PushResult::kClosed);
  EXPECT_EQ(d, 4);
  // Close still drains what TryPush queued.
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.Pop(&v));
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 500;
  BoundedQueue<int> q(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(q.Push(p * kItemsEach + i));
      }
    });
  }
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (true) {
        batch.clear();
        const size_t n = q.PopBatch(&batch, 7);
        if (n == 0) break;
        long long local = 0;
        for (int v : batch) local += v;
        sum.fetch_add(local);
        consumed.fetch_add(static_cast<int>(n));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const int total = kProducers * kItemsEach;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), 1ll * total * (total - 1) / 2);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissInsertClear) {
  ResultCache cache(64);
  Distance d = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  cache.Insert(1, 2, 7);
  ASSERT_TRUE(cache.Lookup(1, 2, &d));
  EXPECT_EQ(d, 7u);
  // (2, 1) is a distinct key (directed pairs).
  EXPECT_FALSE(cache.Lookup(2, 1, &d));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_NEAR(stats.HitRate(), 0.25, 1e-9);
}

TEST(ResultCacheTest, NeverExceedsRequestedCapacity) {
  // 20 entries over (up-to) 16 shards: floor division must keep the
  // resident total at or below 20 no matter how keys hash.
  ResultCache cache(20);
  for (VertexId i = 0; i < 500; ++i) cache.Insert(i, i + 1, 1);
  EXPECT_LE(cache.GetStats().entries, 20u);
  EXPECT_GT(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is globally observable.
  ResultCache cache(2, /*num_shards=*/1);
  cache.Insert(0, 1, 10);
  cache.Insert(0, 2, 20);
  Distance d = 0;
  ASSERT_TRUE(cache.Lookup(0, 1, &d));  // refresh (0,1)
  cache.Insert(0, 3, 30);               // evicts (0,2)
  EXPECT_TRUE(cache.Lookup(0, 1, &d));
  EXPECT_FALSE(cache.Lookup(0, 2, &d));
  EXPECT_TRUE(cache.Lookup(0, 3, &d));
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, 2, 3);
  Distance d = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedAccess) {
  ResultCache cache(1024);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&cache, w] {
      for (int i = 0; i < 2000; ++i) {
        const VertexId s = static_cast<VertexId>((w * 31 + i) % 64);
        const VertexId t = static_cast<VertexId>(i % 97);
        Distance d = 0;
        if (cache.Lookup(s, t, &d)) {
          ASSERT_EQ(d, s + t);  // values must never tear or mix keys
        } else {
          cache.Insert(s, t, s + t);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // A deterministic hit after the storm: whether the concurrent phase
  // itself produced overlapping lookups depends on thread scheduling
  // (on a fast box the threads can run back-to-back and miss each
  // other entirely), so don't assert on it — assert that the cache
  // still hits and counts correctly after the hammering.
  cache.Insert(1, 1, 2);
  Distance d = 0;
  ASSERT_TRUE(cache.Lookup(1, 1, &d));
  EXPECT_EQ(d, 2u);
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.entries, 1024u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, PercentilesFromHistogram) {
  ServerMetrics metrics;
  EXPECT_EQ(metrics.LatencyPercentileUs(99), 0u);
  // 99 requests at ~1us, one at ~1000us.
  for (int i = 0; i < 99; ++i) metrics.RecordRequest(1.0);
  metrics.RecordRequest(1000.0);
  EXPECT_EQ(metrics.requests(), 100u);
  EXPECT_LE(metrics.LatencyPercentileUs(50), 2u);
  // p100 lands in the bucket containing 1000us: [512, 1024).
  EXPECT_EQ(metrics.LatencyPercentileUs(100), 1024u);
  EXPECT_GE(metrics.LatencyPercentileUs(100),
            metrics.LatencyPercentileUs(50));
}

TEST(MetricsTest, PercentileEdgeCases) {
  LatencyHistogram hist;
  // Empty: every percentile (clamped or not) answers 0.
  EXPECT_EQ(hist.PercentileUs(0), 0u);
  EXPECT_EQ(hist.PercentileUs(50), 0u);
  EXPECT_EQ(hist.PercentileUs(100), 0u);

  hist.Record(3);  // bucket [2, 4)
  // p=0 and out-of-range p clamp, and the rank floors at 1, so a
  // single-sample histogram answers that sample's bucket everywhere.
  EXPECT_EQ(hist.PercentileUs(0), 4u);
  EXPECT_EQ(hist.PercentileUs(-10), 4u);
  EXPECT_EQ(hist.PercentileUs(100), 4u);
  EXPECT_EQ(hist.PercentileUs(640), 4u);
}

TEST(MetricsTest, TopBucketSaturates) {
  LatencyHistogram hist;
  // Values beyond the last bucket boundary land in the top bucket
  // instead of being dropped or indexing out of range.
  hist.Record(UINT64_MAX);
  hist.Record(LatencyHistogram::BucketUpperBoundUs(
      LatencyHistogram::kBuckets - 1));
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(
      hist.PercentileUs(100),
      LatencyHistogram::BucketUpperBoundUs(LatencyHistogram::kBuckets - 1));
  const auto buckets = hist.BucketSnapshot();
  EXPECT_EQ(buckets[LatencyHistogram::kBuckets - 1], 2u);
}

RequestTrace MakeTrace(RequestKind kind, WireStatus status) {
  RequestTrace trace;
  trace.kind = kind;
  trace.status = status;
  trace.accepted_ns = 1000;
  trace.parsed_ns = 2000;
  trace.enqueued_ns = 3000;
  trace.dequeued_ns = 53000;     // 50us queue wait
  trace.executed_ns = 153000;    // 100us execute
  trace.encoded_ns = 154000;
  trace.written_ns = 163000;     // 10us write, 162us total
  return trace;
}

TEST(MetricsTest, RecordTraceRoutesOkAndDegraded) {
  ServerMetrics metrics;
  metrics.RecordTrace(MakeTrace(RequestKind::kDist, WireStatus::kOk));
  EXPECT_EQ(metrics.latency_histogram().count(), 1u);
  EXPECT_EQ(metrics.degraded_histogram().count(), 0u);
  EXPECT_EQ(metrics.queue_wait_histogram().count(), 1u);
  EXPECT_EQ(metrics.execute_histogram().count(), 1u);
  EXPECT_EQ(metrics.write_histogram().count(), 1u);
  EXPECT_EQ(metrics.verb_histogram(RequestKind::kDist).count(), 1u);

  // An ERR answer goes to the degraded histogram but still carries its
  // verb and stage durations (it traversed the whole pipeline).
  metrics.RecordTrace(MakeTrace(RequestKind::kKnn, WireStatus::kErr));
  EXPECT_EQ(metrics.latency_histogram().count(), 1u);
  EXPECT_EQ(metrics.degraded_histogram().count(), 1u);
  EXPECT_EQ(metrics.verb_histogram(RequestKind::kKnn).count(), 1u);
  EXPECT_EQ(metrics.queue_wait_histogram().count(), 2u);

  // Shed requests never traverse the queue: degraded + verb only.
  RequestTrace shed = MakeTrace(RequestKind::kDist, WireStatus::kBusy);
  shed.shed = true;
  metrics.RecordTrace(shed);
  EXPECT_EQ(metrics.degraded_histogram().count(), 2u);
  EXPECT_EQ(metrics.queue_wait_histogram().count(), 2u);
  EXPECT_EQ(metrics.execute_histogram().count(), 2u);
  EXPECT_EQ(metrics.verb_histogram(RequestKind::kDist).count(), 2u);

  // Parse errors have no meaningful verb: degraded + write only.
  RequestTrace bad = MakeTrace(RequestKind::kPing, WireStatus::kErr);
  bad.parse_error = true;
  metrics.RecordTrace(bad);
  EXPECT_EQ(metrics.degraded_histogram().count(), 3u);
  EXPECT_EQ(metrics.verb_histogram(RequestKind::kPing).count(), 0u);
  EXPECT_EQ(metrics.write_histogram().count(), 4u);

  // Sampling is orthogonal to recording.
  EXPECT_EQ(metrics.traces_sampled(), 0u);
  RequestTrace sampled = MakeTrace(RequestKind::kDist, WireStatus::kOk);
  sampled.trace_id = 7;
  metrics.RecordTrace(sampled);
  EXPECT_EQ(metrics.traces_sampled(), 1u);
}

TEST(TraceRingTest, WrapsAndReturnsNewestFirst) {
  TraceRing ring(4);
  EXPECT_TRUE(ring.Last(8).empty());
  for (uint64_t id = 1; id <= 6; ++id) {
    RequestTrace trace;
    trace.trace_id = id;
    ring.Push(trace);
  }
  const std::vector<RequestTrace> last = ring.Last(8);
  ASSERT_EQ(last.size(), 4u);  // capacity bounds the answer
  EXPECT_EQ(last[0].trace_id, 6u);
  EXPECT_EQ(last[1].trace_id, 5u);
  EXPECT_EQ(last[2].trace_id, 4u);
  EXPECT_EQ(last[3].trace_id, 3u);
  const std::vector<RequestTrace> two = ring.Last(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].trace_id, 6u);
}

// ---------------------------------------------------------------------------
// End-to-end server
// ---------------------------------------------------------------------------

EdgeList TestGraph(VertexId n, uint64_t seed) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = 5.0;
  options.seed = seed;
  return GenerateGlp(options).ValueOrDie();
}

class ServerEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = TestGraph(300, /*seed=*/17);
    graph_ = CsrGraph::FromEdgeList(edges_).ValueOrDie();
    index_ = HopDbIndex::Build(graph_).ValueOrDie();

    ServerOptions options;
    options.num_workers = 3;
    options.cache_capacity = 512;
    server_ = DistanceServer::Start(
                  HopDbIndex::Build(graph_).ValueOrDie(), options)
                  .ValueOrDie();
    client_ = DistanceClient::Connect("127.0.0.1", server_->port())
                  .ValueOrDie();
  }

  EdgeList edges_;
  CsrGraph graph_;
  HopDbIndex index_;
  std::unique_ptr<DistanceServer> server_;
  DistanceClient client_;
};

TEST_F(ServerEndToEndTest, PingAndStats) {
  EXPECT_EQ(*client_.RoundTrip("PING"), "OK pong");
  const std::string stats = *client_.RoundTrip("STATS");
  EXPECT_TRUE(StartsWith(stats, "OK "));
  EXPECT_NE(stats.find("qps="), std::string::npos);
  EXPECT_NE(stats.find("p99_us="), std::string::npos);
  EXPECT_NE(stats.find("cache_hit_rate="), std::string::npos);
  EXPECT_NE(stats.find("vertices=300"), std::string::npos);
}

TEST_F(ServerEndToEndTest, DistMatchesOracleAndCaches) {
  const std::vector<Distance> truth = ExactDistances(graph_, 5);
  for (VertexId t = 0; t < 40; ++t) {
    ASSERT_EQ(*client_.QueryDistance(5, t), truth[t]) << "t=" << t;
  }
  // Same pairs again: answers identical, served from the cache.
  for (VertexId t = 0; t < 40; ++t) {
    ASSERT_EQ(*client_.QueryDistance(5, t), truth[t]) << "t=" << t;
  }
  EXPECT_GT(server_->cache_stats().hits, 0u);
}

TEST_F(ServerEndToEndTest, BatchMatchesOracle) {
  const std::vector<Distance> truth = ExactDistances(graph_, 9);
  // Large batch (engine path) and small batch (direct path).
  std::string big = "BATCH 9";
  for (VertexId t = 0; t < 25; ++t) {
    big += ' ';
    big += std::to_string(t);
  }
  const std::string response = *client_.RoundTrip(big);
  ASSERT_TRUE(StartsWith(response, "OK "));
  const std::vector<std::string> tokens =
      SplitString(response.substr(3), ' ');
  ASSERT_EQ(tokens.size(), 25u);
  for (VertexId t = 0; t < 25; ++t) {
    ASSERT_EQ(*ParseDistanceToken(tokens[t]), truth[t]) << "t=" << t;
  }
  const std::string small = *client_.RoundTrip("BATCH 9 1 2");
  ASSERT_TRUE(StartsWith(small, "OK "));
  const std::vector<std::string> small_tokens =
      SplitString(small.substr(3), ' ');
  ASSERT_EQ(small_tokens.size(), 2u);
  EXPECT_EQ(*ParseDistanceToken(small_tokens[0]), truth[1]);
  EXPECT_EQ(*ParseDistanceToken(small_tokens[1]), truth[2]);
}

TEST_F(ServerEndToEndTest, KnnMatchesEngine) {
  const std::string response = *client_.RoundTrip("KNN 7 6");
  ASSERT_TRUE(StartsWith(response, "OK "));
  const std::vector<std::string> tokens =
      SplitString(response.substr(3), ' ');
  ASSERT_EQ(tokens.size(), 6u);

  KnnEngine engine(index_.label_index(), KnnEngine::Direction::kForward);
  const RankMapping& mapping = index_.ranking();
  const auto expected = engine.Query(mapping.ToInternal(7), 6);
  ASSERT_EQ(expected.size(), 6u);
  Distance prev = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const size_t colon = tokens[i].find(':');
    ASSERT_NE(colon, std::string::npos);
    const Distance d = *ParseDistanceToken(tokens[i].substr(colon + 1));
    // Distance sequence must match the reference engine's (vertex ties
    // may break differently between identical builds).
    EXPECT_EQ(d, expected[i].dist) << "i=" << i;
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_F(ServerEndToEndTest, WithinMatchesOracleSet) {
  const VertexId s = 11;
  const Distance radius = 3;
  const std::string response =
      *client_.RoundTrip("WITHIN " + std::to_string(s) + " " +
                         std::to_string(radius));
  ASSERT_TRUE(StartsWith(response, "OK")) << response;

  // The wire answer is the exact radius set {v : d(s, v) <= r}, s
  // excluded, as v:d tokens in (distance, vertex) order.
  const std::vector<Distance> truth = ExactDistances(graph_, s);
  std::vector<std::pair<VertexId, Distance>> got;
  if (response.size() > 3) {
    for (const std::string& token : SplitString(response.substr(3), ' ')) {
      const size_t colon = token.find(':');
      ASSERT_NE(colon, std::string::npos) << token;
      uint64_t v = 0;
      ASSERT_TRUE(ParseUint64(token.substr(0, colon), &v));
      got.emplace_back(static_cast<VertexId>(v),
                       *ParseDistanceToken(token.substr(colon + 1)));
    }
  }
  std::vector<std::pair<VertexId, Distance>> want;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (v != s && truth[v] <= radius) want.emplace_back(v, truth[v]);
  }
  auto by_vertex = [](const std::pair<VertexId, Distance>& a,
                      const std::pair<VertexId, Distance>& b) {
    return a.first < b.first;
  };
  std::sort(got.begin(), got.end(), by_vertex);
  std::sort(want.begin(), want.end(), by_vertex);
  EXPECT_EQ(got, want);

  // Radius 0 excludes everything but the (excluded) source itself.
  EXPECT_EQ(*client_.RoundTrip("WITHIN " + std::to_string(s) + " 0"), "OK");
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("WITHIN 999999 3"), "ERR "));
}

TEST_F(ServerEndToEndTest, ReachMatchesOracleVerdict) {
  const VertexId s = 4;
  const std::vector<Distance> truth = ExactDistances(graph_, s);
  for (VertexId t = 0; t < 30; ++t) {
    for (const Distance bound : {Distance{1}, Distance{3}, Distance{6}}) {
      const std::string response = *client_.RoundTrip(
          "REACH " + std::to_string(s) + " " + std::to_string(t) + " " +
          std::to_string(bound));
      const bool want = truth[t] != kInfDistance && truth[t] <= bound;
      ASSERT_EQ(response, want ? "OK 1" : "OK 0")
          << "t=" << t << " bound=" << bound;
    }
  }
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("REACH 0 999999 3"), "ERR "));
}

TEST_F(ServerEndToEndTest, PathWithoutGraphIsPreconditionError) {
  const std::string response = *client_.RoundTrip("PATH 0 5");
  ASSERT_TRUE(StartsWith(response, "ERR ")) << response;
  // The error must tell the operator the fix.
  EXPECT_NE(response.find("--graph"), std::string::npos) << response;
}

// A server whose snapshot carries the build graph (serve --graph at
// startup funnels into the same snapshot constructor) answers PATH with
// real shortest paths on every framing.
TEST_F(ServerEndToEndTest, PathMatchesOracleWhenGraphAttached) {
  ServerOptions options;
  options.num_workers = 2;
  auto with_graph =
      DistanceServer::Start(
          std::make_shared<ServingSnapshot>(
              HopDbIndex::Build(graph_).ValueOrDie(), "", 128, 0,
              std::make_shared<const CsrGraph>(graph_)),
          options)
          .ValueOrDie();
  auto v1 = DistanceClient::Connect("127.0.0.1", with_graph->port())
                .ValueOrDie();
  auto v2 = DistanceClient::Connect("127.0.0.1", with_graph->port(),
                                    DistanceClient::Protocol::kV2)
                .ValueOrDie();

  const VertexId s = 3;
  const std::vector<Distance> truth = ExactDistances(graph_, s);
  for (VertexId t = 0; t < 40; ++t) {
    const std::string line = "PATH " + std::to_string(s) + " " +
                             std::to_string(t);
    const std::string response = *v1.RoundTrip(line);
    if (truth[t] == kInfDistance) {
      // Unreachable is an answer: a bare OK (empty sequence), not ERR.
      ASSERT_EQ(response, "OK") << "t=" << t;
      continue;
    }
    ASSERT_TRUE(StartsWith(response, "OK")) << response;
    std::vector<VertexId> path;
    if (response.size() > 3) {
      for (const std::string& token : SplitString(response.substr(3), ' ')) {
        uint64_t v = 0;
        ASSERT_TRUE(ParseUint64(token, &v)) << token;
        path.push_back(static_cast<VertexId>(v));
      }
    }
    ASSERT_FALSE(path.empty()) << "t=" << t;
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // Real and tight: every hop an arc, weight sum == the distance.
    EXPECT_EQ(PathLength(graph_, path), truth[t]) << "t=" << t;

    // v2 carries the same vertex sequence in a kDistances payload.
    const WireResponse frame = *v2.Call(ParseRequest(line).ValueOrDie());
    EXPECT_EQ(EncodeResponseV1(frame), response) << line;
  }
}

// After ADDEDGE + COMMIT, PATH answers on the committed adjacency: the
// republished snapshot freezes its path graph from the update session,
// so the new edge shows up in paths without any file reload.
TEST_F(ServerEndToEndTest, PathFollowsCommittedEdits) {
  auto tmp = TempDir::Create("server_path_commit");
  ASSERT_TRUE(tmp.ok());
  const std::string graph_path = tmp->File("g.hgr");
  ASSERT_TRUE(WriteBinaryGraph(edges_, graph_path).ok());
  ASSERT_TRUE(server_->RegisterUpdateGraph("", graph_path).ok());

  const std::vector<Distance> truth = ExactDistances(graph_, 0);
  VertexId far = kInvalidVertex;
  for (VertexId t = 1; t < graph_.num_vertices(); ++t) {
    if (truth[t] != kInfDistance && truth[t] >= 3) {
      far = t;
      break;
    }
  }
  ASSERT_NE(far, kInvalidVertex) << "test graph too dense";

  ASSERT_EQ(*client_.RoundTrip("ADDEDGE 0 " + std::to_string(far)),
            "OK applied pending=1");
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("COMMIT"), "OK committed "));

  // The shortcut edge IS the shortest path now.
  const std::string response =
      *client_.RoundTrip("PATH 0 " + std::to_string(far));
  ASSERT_TRUE(StartsWith(response, "OK ")) << response;
  EXPECT_EQ(response, "OK 0 " + std::to_string(far));

  // And paths elsewhere remain valid on the mutated graph.
  EdgeList mutated = edges_;
  mutated.Add(0, far);
  mutated.Normalize();
  const CsrGraph mutated_graph = CsrGraph::FromEdgeList(mutated).ValueOrDie();
  const std::vector<Distance> mutated_truth =
      ExactDistances(mutated_graph, 0);
  for (VertexId t = 0; t < 30; ++t) {
    if (mutated_truth[t] == kInfDistance) continue;
    const std::string line = *client_.RoundTrip("PATH 0 " +
                                                std::to_string(t));
    ASSERT_TRUE(StartsWith(line, "OK")) << line;
    std::vector<VertexId> path;
    if (line.size() > 3) {
      for (const std::string& token : SplitString(line.substr(3), ' ')) {
        uint64_t v = 0;
        ASSERT_TRUE(ParseUint64(token, &v)) << token;
        path.push_back(static_cast<VertexId>(v));
      }
    }
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(PathLength(mutated_graph, path), mutated_truth[t])
        << "t=" << t;
  }
}

TEST_F(ServerEndToEndTest, ErrorsComeBackAsErrLines) {
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DIST 0 999999"), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("NOSUCH 1 2"), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DIST a b"), "ERR "));
  // The connection survives protocol errors.
  EXPECT_EQ(*client_.RoundTrip("PING"), "OK pong");
}

TEST_F(ServerEndToEndTest, PipelinedRequestsAnswerInOrder) {
  // Multiple commands in one write: responses must come back in order.
  auto r1 = client_.RoundTrip("PING\nDIST 0 1\nPING");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, "OK pong");
  auto r2 = client_.RoundTrip("PING");  // drains DIST response first
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(StartsWith(*r2, "OK "));
}

TEST_F(ServerEndToEndTest, StatsExportsServingCoreKeys) {
  const std::string stats = *client_.RoundTrip("STATS");
  EXPECT_NE(stats.find("shed=0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("io_threads="), std::string::npos);
  EXPECT_NE(stats.find("open_connections="), std::string::npos);
  EXPECT_NE(stats.find("queue_capacity="), std::string::npos);
}

TEST_F(ServerEndToEndTest, V2ServesIdenticalAnswersToV1) {
  auto v2 = DistanceClient::Connect("127.0.0.1", server_->port(),
                                    DistanceClient::Protocol::kV2)
                .ValueOrDie();
  // Every deterministic verb must answer byte-identically across the
  // framings (the shared v1 rendering is the comparison space).
  std::string big_batch = "BATCH 9";
  for (VertexId t = 0; t < 25; ++t) {
    big_batch += ' ';
    big_batch += std::to_string(t);
  }
  const std::vector<std::string> lines = {
      "PING",          "DIST 5 20", "BATCH 9 1 2",          "DIST 20 5",
      "DIST 0 999999", big_batch,   "USE nosuch DIST 1 2",  "KNN 7 6",
      "WITHIN 7 3",    "WITHIN 7 0", "REACH 5 20 4",        "REACH 5 20 1",
      "REACH 0 999999 3",
      // PATH has no graph on this fixture: the ERR must also match.
      "PATH 5 20"};
  for (const std::string& line : lines) {
    const std::string v1_answer = *client_.RoundTrip(line);
    const WireResponse v2_answer =
        v2.Call(ParseRequest(line).ValueOrDie()).ValueOrDie();
    EXPECT_EQ(EncodeResponseV1(v2_answer), v1_answer) << line;
  }
  // The convenience helper speaks whichever framing the client opened.
  EXPECT_EQ(*v2.QueryDistance(5, 20), *client_.QueryDistance(5, 20));
  // STATS carries live counters (not byte-stable between two calls);
  // check the status and payload shape instead.
  const WireResponse stats = *v2.Call(ParseRequest("STATS").ValueOrDie());
  EXPECT_EQ(stats.status, WireStatus::kOk);
  EXPECT_NE(stats.text.find("io_threads="), std::string::npos);
}

TEST_F(ServerEndToEndTest, V2AdminVerbsMatchV1Semantics) {
  auto tmp = TempDir::Create("server_v2_admin");
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp->File("x.hli");
  ASSERT_TRUE(index_.Save(path).ok());
  auto v2 = DistanceClient::Connect("127.0.0.1", server_->port(),
                                    DistanceClient::Protocol::kV2)
                .ValueOrDie();

  const WireResponse attach =
      *v2.Call(ParseRequest("ATTACH v2idx " + path).ValueOrDie());
  ASSERT_EQ(attach.status, WireStatus::kOk) << attach.text;
  EXPECT_TRUE(StartsWith(attach.text, "attached v2idx"));

  // Routed queries against the attached index agree across framings.
  const std::string routed_v1 = *client_.RoundTrip("USE v2idx DIST 7 1");
  const WireResponse routed_v2 =
      *v2.Call(ParseRequest("USE v2idx DIST 7 1").ValueOrDie());
  EXPECT_EQ(EncodeResponseV1(routed_v2), routed_v1);

  const WireResponse reload =
      *v2.Call(ParseRequest("USE v2idx RELOAD").ValueOrDie());
  EXPECT_EQ(reload.status, WireStatus::kOk) << reload.text;

  const WireResponse detach =
      *v2.Call(ParseRequest("DETACH v2idx").ValueOrDie());
  EXPECT_EQ(detach.status, WireStatus::kOk);
  EXPECT_EQ(detach.text, "detached v2idx");
  EXPECT_EQ(v2.Call(ParseRequest("USE v2idx DIST 7 1").ValueOrDie())->status,
            WireStatus::kErr);
}

TEST_F(ServerEndToEndTest, ReloadSwapsIndexAndInvalidatesCache) {
  auto tmp = TempDir::Create("server_test");
  ASSERT_TRUE(tmp.ok());

  // Answer a pair on graph A and pin it in the cache.
  const std::vector<Distance> truth_a = ExactDistances(graph_, 3);
  ASSERT_EQ(*client_.QueryDistance(3, 20), truth_a[20]);
  ASSERT_EQ(*client_.QueryDistance(3, 20), truth_a[20]);

  // Build a different graph B (different seed, larger) and save it.
  const EdgeList edges_b = TestGraph(400, /*seed=*/99);
  const CsrGraph graph_b = CsrGraph::FromEdgeList(edges_b).ValueOrDie();
  HopDbIndex index_b = HopDbIndex::Build(graph_b).ValueOrDie();
  const std::string path_b = tmp->File("b.hli");
  ASSERT_TRUE(index_b.Save(path_b).ok());

  const std::string reload = *client_.RoundTrip("RELOAD " + path_b);
  ASSERT_TRUE(StartsWith(reload, "OK ")) << reload;
  EXPECT_NE(reload.find("vertices=400"), std::string::npos);
  EXPECT_EQ(server_->metrics().reloads(), 1u);

  // Every answer now reflects graph B — including the pair that was
  // cached under graph A (per-snapshot caches make staleness impossible).
  const std::vector<Distance> truth_b = ExactDistances(graph_b, 3);
  for (VertexId t : {VertexId{20}, VertexId{1}, VertexId{350}}) {
    ASSERT_EQ(*client_.QueryDistance(3, t), truth_b[t]) << "t=" << t;
  }

  // Bare RELOAD re-reads the last explicit path.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("RELOAD"), "OK "));
}

TEST_F(ServerEndToEndTest, BareReloadWithoutSourceFails) {
  // This server was started from an in-memory index: bare RELOAD must be
  // refused until an explicit path establishes a source.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("RELOAD"), "ERR "));
}

TEST_F(ServerEndToEndTest, ReloadFromMissingFileKeepsServing) {
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("RELOAD /nonexistent/x.hli"),
                         "ERR "));
  const std::vector<Distance> truth = ExactDistances(graph_, 2);
  EXPECT_EQ(*client_.QueryDistance(2, 10), truth[10]);
}

TEST_F(ServerEndToEndTest, AttachUseDetachServesSecondIndex) {
  auto tmp = TempDir::Create("server_multi");
  ASSERT_TRUE(tmp.ok());

  // A second, structurally different graph, saved as a zero-copy HLI2
  // file so ATTACH takes the mmap path.
  const EdgeList edges_b = TestGraph(500, /*seed=*/41);
  const CsrGraph graph_b = CsrGraph::FromEdgeList(edges_b).ValueOrDie();
  HopDbIndex index_b = HopDbIndex::Build(graph_b).ValueOrDie();
  const std::string path_b = tmp->File("b.hli2");
  ASSERT_TRUE(MappedIndex::Write(index_b.label_index(), index_b.ranking(),
                                 path_b)
                  .ok());

  const std::string attach = *client_.RoundTrip("ATTACH second " + path_b);
  ASSERT_TRUE(StartsWith(attach, "OK ")) << attach;
  EXPECT_NE(attach.find("vertices=500"), std::string::npos);
  EXPECT_NE(attach.find("mode=mmap"), std::string::npos);

  // The attached index answers oracle-correct over the wire while the
  // default keeps serving untouched.
  const std::vector<Distance> truth_b = ExactDistances(graph_b, 7);
  const std::vector<Distance> truth_a = ExactDistances(graph_, 7);
  for (VertexId t = 0; t < 60; ++t) {
    const std::string routed =
        *client_.RoundTrip("USE second DIST 7 " + std::to_string(t));
    ASSERT_TRUE(StartsWith(routed, "OK ")) << routed;
    ASSERT_EQ(*ParseDistanceToken(routed.substr(3)), truth_b[t]) << t;
    ASSERT_EQ(*client_.QueryDistance(7, t), truth_a[t]) << t;
  }
  // USE-prefixed BATCH and KNN route too.
  const std::string batch =
      *client_.RoundTrip("USE second BATCH 7 1 2 3 4 5 6");
  ASSERT_TRUE(StartsWith(batch, "OK ")) << batch;
  const std::vector<std::string> tokens = SplitString(batch.substr(3), ' ');
  ASSERT_EQ(tokens.size(), 6u);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(*ParseDistanceToken(tokens[j]), truth_b[j + 1]);
  }
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("USE second KNN 7 5"), "OK "));

  // Vertex range errors are per-index: 400 exists only in `second`.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("USE second DIST 7 400"), "OK "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DIST 7 400"), "ERR "));

  // STATS reports the registry with per-index mode and footprint.
  const std::string stats = *client_.RoundTrip("STATS");
  EXPECT_NE(stats.find("indexes=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("index.default.mode=heap"), std::string::npos);
  EXPECT_NE(stats.find("index.second.mode=mmap"), std::string::npos);
  EXPECT_NE(stats.find("index.second.vertices=500"), std::string::npos);
  EXPECT_NE(stats.find("index.second.resident_bytes="), std::string::npos);

  // Per-index RELOAD is an O(1) remap for the mmap backing.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("USE second RELOAD"), "OK "));
  EXPECT_EQ(*ParseDistanceToken(
                client_.RoundTrip("USE second DIST 7 1")->substr(3)),
            truth_b[1]);

  // DETACH removes the name; the default index is untouched.
  EXPECT_EQ(*client_.RoundTrip("DETACH second"), "OK detached second");
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("USE second DIST 7 1"), "ERR "));
  EXPECT_EQ(*client_.QueryDistance(7, 1), truth_a[1]);
  EXPECT_NE(client_.RoundTrip("STATS")->find("indexes=1"),
            std::string::npos);
}

TEST_F(ServerEndToEndTest, AttachRejectsBadNamesAndDuplicates) {
  auto tmp = TempDir::Create("server_multi_err");
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp->File("x.hli");
  ASSERT_TRUE(index_.Save(path).ok());

  // Reserved and malformed names.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("ATTACH default " + path),
                         "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("ATTACH bad/name " + path),
                         "ERR "));
  // Attach, duplicate attach, detach of unknown/default names.
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("ATTACH g2 " + path), "OK "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("ATTACH g2 " + path), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DETACH nosuch"), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DETACH default"), "ERR "));
  // A failed ATTACH (missing file) must not register the name.
  EXPECT_TRUE(StartsWith(
      *client_.RoundTrip("ATTACH g3 /nonexistent/index.hli2"), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("USE g3 DIST 0 1"), "ERR "));
  EXPECT_EQ(*client_.RoundTrip("DETACH g2"), "OK detached g2");
}

// ---------------------------------------------------------------------------
// Online updates (ADDEDGE / DELEDGE / COMMIT)
// ---------------------------------------------------------------------------

TEST_F(ServerEndToEndTest, UpdateVerbsRepairAndCommit) {
  auto tmp = TempDir::Create("server_update");
  ASSERT_TRUE(tmp.ok());
  // Binary graph: id-exact round-trip (text loading compacts ids).
  const std::string graph_path = tmp->File("g.hgr");
  ASSERT_TRUE(WriteBinaryGraph(edges_, graph_path).ok());
  ASSERT_TRUE(server_->RegisterUpdateGraph("", graph_path).ok());

  // A far-apart reachable pair: the inserted edge must shortcut it.
  const std::vector<Distance> truth = ExactDistances(graph_, 0);
  VertexId far = kInvalidVertex;
  for (VertexId t = 1; t < graph_.num_vertices(); ++t) {
    if (truth[t] != kInfDistance && truth[t] >= 3) {
      far = t;
      break;
    }
  }
  ASSERT_NE(far, kInvalidVertex) << "test graph too dense";

  // The edge op repairs the working copy; serving is unchanged until
  // COMMIT publishes the repaired snapshot.
  const std::string applied =
      *client_.RoundTrip("ADDEDGE 0 " + std::to_string(far));
  EXPECT_EQ(applied, "OK applied pending=1");
  EXPECT_EQ(*client_.QueryDistance(0, far), truth[far]);
  const std::string pending_stats = *client_.RoundTrip("STATS");
  EXPECT_NE(pending_stats.find("index.default.pending_updates=1"),
            std::string::npos)
      << pending_stats;

  const std::string committed = *client_.RoundTrip("COMMIT");
  ASSERT_TRUE(StartsWith(committed, "OK committed updates=1 ")) << committed;
  EXPECT_EQ(*client_.QueryDistance(0, far), 1u);

  // Differential check: the published snapshot answers identically to a
  // from-scratch build on the mutated graph.
  EdgeList mutated = edges_;
  mutated.Add(0, far);
  mutated.Normalize();
  const CsrGraph mutated_graph = CsrGraph::FromEdgeList(mutated).ValueOrDie();
  const std::vector<Distance> mutated_truth = ExactDistances(mutated_graph, 0);
  for (VertexId t = 0; t < 60; ++t) {
    ASSERT_EQ(*client_.QueryDistance(0, t), mutated_truth[t]) << "t=" << t;
  }

  // Redundant insert is a no-op; deleting it and committing restores
  // the original distances exactly.
  EXPECT_EQ(*client_.RoundTrip("ADDEDGE 0 " + std::to_string(far)),
            "OK noop pending=0");
  EXPECT_EQ(*client_.RoundTrip("DELEDGE 0 " + std::to_string(far)),
            "OK applied pending=1");
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("COMMIT"), "OK committed "));
  for (VertexId t = 0; t < 60; ++t) {
    ASSERT_EQ(*client_.QueryDistance(0, t), truth[t]) << "t=" << t;
  }

  // Post-commit STATS: drained transaction, recorded commit time.
  const std::string stats = *client_.RoundTrip("STATS");
  EXPECT_NE(stats.find("index.default.pending_updates=0"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("index.default.last_commit_seconds="),
            std::string::npos);

  // Invalid ops answer ERR without disturbing the session.
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("DELEDGE 0 " +
                                            std::to_string(far)),
                         "ERR "));  // already deleted
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("ADDEDGE 4 4"), "ERR "));
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("ADDEDGE 0 999999"), "ERR "));
  EXPECT_EQ(*client_.RoundTrip("COMMIT"), "OK nothing to commit");
}

// COMMIT's selective invalidation: cached pairs whose source Lout and
// target Lin both survived the repair untouched must carry over into
// the new snapshot's cache — and every carried answer must still be
// exact on the mutated graph.
TEST_F(ServerEndToEndTest, CommitCarriesUnaffectedCacheEntries) {
  auto tmp = TempDir::Create("server_commit_cache");
  ASSERT_TRUE(tmp.ok());
  const std::string graph_path = tmp->File("g.hgr");
  ASSERT_TRUE(WriteBinaryGraph(edges_, graph_path).ok());
  ASSERT_TRUE(server_->RegisterUpdateGraph("", graph_path).ok());

  // A nearby pair: an edge between vertices at distance 2 keeps the
  // repair (and its touched-owner set) local, so the commit stays below
  // the wholesale-invalidation threshold.
  const std::vector<Distance> truth = ExactDistances(graph_, 5);
  VertexId near = kInvalidVertex;
  for (VertexId t = 0; t < graph_.num_vertices(); ++t) {
    if (truth[t] == 2) {
      near = t;
      break;
    }
  }
  ASSERT_NE(near, kInvalidVertex) << "test graph too sparse";

  // Warm the serving cache with a block of pairs (capacity 512, so the
  // survivors are the most recently asked).
  for (VertexId s = 0; s < 40; ++s) {
    for (VertexId t = 0; t < 40; ++t) {
      ASSERT_TRUE(client_.QueryDistance(s, t).ok());
    }
  }

  EXPECT_EQ(*client_.RoundTrip("ADDEDGE 5 " + std::to_string(near)),
            "OK applied pending=1");
  const std::string committed = *client_.RoundTrip("COMMIT");
  ASSERT_TRUE(StartsWith(committed, "OK committed updates=1 ")) << committed;

  const auto ParseCounter = [&committed](const std::string& key) {
    const size_t pos = committed.find(" " + key + "=");
    EXPECT_NE(pos, std::string::npos) << committed;
    return static_cast<uint64_t>(
        std::stoull(committed.substr(pos + key.size() + 2)));
  };
  const uint64_t carried = ParseCounter("cache_carried");
  const uint64_t dropped = ParseCounter("cache_dropped");
  EXPECT_GT(carried, 0u) << committed;
  // Carried + dropped covers exactly the live entries of the old cache
  // (<= capacity 512 after LRU eviction of the 1600 warmed pairs).
  EXPECT_LE(carried + dropped, 512u) << committed;

  // Every warmed pair — carried or re-computed — must answer with the
  // mutated graph's exact distance. A stale carried entry fails here.
  EdgeList mutated = edges_;
  mutated.Add(5, near);
  mutated.Normalize();
  const CsrGraph mutated_graph = CsrGraph::FromEdgeList(mutated).ValueOrDie();
  for (VertexId s = 0; s < 40; ++s) {
    const std::vector<Distance> want = ExactDistances(mutated_graph, s);
    for (VertexId t = 0; t < 40; ++t) {
      ASSERT_EQ(*client_.QueryDistance(s, t), want[t])
          << s << "->" << t;
    }
  }
}

TEST_F(ServerEndToEndTest, UpdateVerbsRequireRegisteredGraph) {
  const std::string response = *client_.RoundTrip("ADDEDGE 0 1");
  ASSERT_TRUE(StartsWith(response, "ERR ")) << response;
  EXPECT_NE(response.find("--graph"), std::string::npos) << response;
  // COMMIT without a session is a harmless no-op, not an error.
  EXPECT_EQ(*client_.RoundTrip("COMMIT"), "OK nothing to commit");
}

TEST_F(ServerEndToEndTest, UpdatesRefusedOnMmapIndex) {
  auto tmp = TempDir::Create("server_update_mmap");
  ASSERT_TRUE(tmp.ok());
  const std::string index_path = tmp->File("m.hli2");
  ASSERT_TRUE(MappedIndex::Write(index_.label_index(), index_.ranking(),
                                 index_path)
                  .ok());
  const std::string graph_path = tmp->File("g.hgr");
  ASSERT_TRUE(WriteBinaryGraph(edges_, graph_path).ok());
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("ATTACH mm " + index_path),
                         "OK "));
  ASSERT_TRUE(server_->RegisterUpdateGraph("mm", graph_path).ok());
  const std::string response = *client_.RoundTrip("USE mm ADDEDGE 0 1");
  ASSERT_TRUE(StartsWith(response, "ERR ")) << response;
  EXPECT_NE(response.find("read-only"), std::string::npos) << response;
}

TEST_F(ServerEndToEndTest, ReloadDiscardsUncommittedUpdates) {
  auto tmp = TempDir::Create("server_update_reload");
  ASSERT_TRUE(tmp.ok());
  const std::string index_path = tmp->File("a.hli");
  ASSERT_TRUE(index_.Save(index_path).ok());
  const std::string graph_path = tmp->File("g.hgr");
  ASSERT_TRUE(WriteBinaryGraph(edges_, graph_path).ok());
  ASSERT_TRUE(server_->RegisterUpdateGraph("", graph_path).ok());

  const std::vector<Distance> truth = ExactDistances(graph_, 0);
  VertexId far = kInvalidVertex;
  for (VertexId t = 1; t < graph_.num_vertices(); ++t) {
    if (truth[t] != kInfDistance && truth[t] >= 3) {
      far = t;
      break;
    }
  }
  ASSERT_NE(far, kInvalidVertex);
  EXPECT_EQ(*client_.RoundTrip("ADDEDGE 0 " + std::to_string(far)),
            "OK applied pending=1");
  // RELOAD republishes from disk: the uncommitted transaction is gone.
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("RELOAD " + index_path), "OK "));
  EXPECT_EQ(*client_.RoundTrip("COMMIT"), "OK nothing to commit");
  EXPECT_EQ(*client_.QueryDistance(0, far), truth[far]);
  // The session re-seeds from the reloaded snapshot; updates work again.
  EXPECT_EQ(*client_.RoundTrip("ADDEDGE 0 " + std::to_string(far)),
            "OK applied pending=1");
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("COMMIT"), "OK committed "));
  EXPECT_EQ(*client_.QueryDistance(0, far), 1u);
}

TEST(ServerLifecycleTest, StopUnblocksConnectedClients) {
  const EdgeList edges = TestGraph(120, /*seed=*/5);
  ServerOptions options;
  options.num_workers = 2;
  auto server =
      DistanceServer::Start(HopDbIndex::Build(edges).ValueOrDie(), options)
          .ValueOrDie();
  auto client =
      DistanceClient::Connect("127.0.0.1", server->port()).ValueOrDie();
  EXPECT_EQ(*client.RoundTrip("PING"), "OK pong");
  server->Stop();
  // The connection is closed; the client sees an error, not a hang.
  auto response = client.RoundTrip("PING");
  if (response.ok()) {
    EXPECT_TRUE(StartsWith(*response, "ERR "));
  }
  server->Stop();  // idempotent
}

TEST(ServerLifecycleTest, PortZeroPicksEphemeralPortAndRebinds) {
  const EdgeList edges = TestGraph(100, /*seed=*/6);
  ServerOptions options;
  options.num_workers = 1;
  auto a = DistanceServer::Start(HopDbIndex::Build(edges).ValueOrDie(),
                                 options)
               .ValueOrDie();
  auto b = DistanceServer::Start(HopDbIndex::Build(edges).ValueOrDie(),
                                 options)
               .ValueOrDie();
  EXPECT_NE(a->port(), 0);
  EXPECT_NE(b->port(), 0);
  EXPECT_NE(a->port(), b->port());
}

// ---------------------------------------------------------------------------
// Tracing + telemetry end to end
// ---------------------------------------------------------------------------

// Completed traces are delivered on the I/O thread *after* the response
// bytes reach the kernel, so a client that has read its answer may still
// be a few microseconds ahead of HandleTraceDone.  Poll, don't assert.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class TracingEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = CsrGraph::FromEdgeList(TestGraph(200, /*seed=*/23)).ValueOrDie();
    ServerOptions options;
    options.num_workers = 2;
    options.trace_sample_rate = 1.0;  // every request lands in the ring
    options.trace_ring_capacity = 64;
    server_ = DistanceServer::Start(HopDbIndex::Build(graph_).ValueOrDie(),
                                    options)
                  .ValueOrDie();
    client_ = DistanceClient::Connect("127.0.0.1", server_->port())
                  .ValueOrDie();
  }

  CsrGraph graph_;
  std::unique_ptr<DistanceServer> server_;
  DistanceClient client_;
};

TEST_F(TracingEndToEndTest, MetricsBlobIsPrometheusText) {
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("DIST 5 20"), "OK "));
  const std::string body = *client_.RoundTrip("METRICS");
  // RoundTrip unwraps the blob framing: the body is the exposition text.
  EXPECT_TRUE(StartsWith(body, "# HELP ")) << body.substr(0, 200);
  EXPECT_NE(body.find("# TYPE hopdb_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("hopdb_build_info{"), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(body.find("hopdb_stage_duration_us_bucket{stage=\"execute\""),
            std::string::npos);
  // v2 carries the same bytes as a blob payload.
  auto v2 = DistanceClient::Connect("127.0.0.1", server_->port(),
                                    DistanceClient::Protocol::kV2)
                .ValueOrDie();
  const WireResponse response =
      *v2.Call(ParseRequest("METRICS").ValueOrDie());
  EXPECT_EQ(response.status, WireStatus::kOk);
  EXPECT_EQ(response.payload, WirePayload::kBlob);
  EXPECT_NE(response.text.find("hopdb_requests_total"), std::string::npos);
}

TEST_F(TracingEndToEndTest, TraceRingCapturesMonotonicStages) {
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("DIST 5 20"), "OK "));
  ASSERT_EQ(*client_.RoundTrip("PING"), "OK pong");
  ASSERT_TRUE(WaitFor([&] { return server_->RecentTraces(8).size() >= 2; }));

  for (const RequestTrace& trace : server_->RecentTraces(8)) {
    EXPECT_NE(trace.trace_id, 0u);
    EXPECT_GT(trace.accepted_ns, 0u);
    EXPECT_LE(trace.accepted_ns, trace.parsed_ns);
    EXPECT_LE(trace.parsed_ns, trace.enqueued_ns);
    EXPECT_LE(trace.enqueued_ns, trace.dequeued_ns);
    EXPECT_LE(trace.dequeued_ns, trace.executed_ns);
    EXPECT_LE(trace.executed_ns, trace.encoded_ns);
    EXPECT_LE(trace.encoded_ns, trace.written_ns);
    EXPECT_EQ(trace.status, WireStatus::kOk);
  }

  // The TRACE verb renders the same ring as a blob span table.
  const std::string table = *client_.RoundTrip("TRACE LAST 8");
  EXPECT_TRUE(StartsWith(table, "trace_id ")) << table.substr(0, 120);
  EXPECT_NE(table.find(" dist "), std::string::npos) << table;
  EXPECT_NE(table.find(" ping "), std::string::npos) << table;
  EXPECT_TRUE(StartsWith(*client_.RoundTrip("TRACE LAST 0"), "ERR "));
}

TEST_F(TracingEndToEndTest, DegradedRequestsLandInDegradedHistogram) {
  const uint64_t ok_before = server_->metrics().latency_histogram().count();
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("NOSUCH 1 2"), "ERR "));
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("DIST 0 999999"), "ERR "));
  ASSERT_TRUE(WaitFor(
      [&] { return server_->metrics().degraded_histogram().count() >= 2; }));
  // Error answers never inflate the healthy latency distribution, and a
  // parse error never lands in any verb histogram.
  EXPECT_EQ(server_->metrics().latency_histogram().count(), ok_before);
  ASSERT_TRUE(WaitFor([&] {
    return server_->metrics().verb_histogram(RequestKind::kDist).count() >= 1;
  }));
}

TEST_F(TracingEndToEndTest, StatsExportsBuildAndStageKeys) {
  ASSERT_TRUE(StartsWith(*client_.RoundTrip("DIST 5 20"), "OK "));
  ASSERT_TRUE(WaitFor(
      [&] { return server_->metrics().execute_histogram().count() >= 1; }));
  const std::string stats = *client_.RoundTrip("STATS");
  for (const char* key :
       {"uptime_seconds=", "build_git_sha=", "queue_wait_p99_us=",
        "execute_p50_us=", "write_p99_us=", "degraded_p99_us=",
        "slow_queries=", "traces_sampled="}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key << "\n" << stats;
  }
}

TEST(SlowQueryLogTest, EmitsStructuredJsonLine) {
  std::mutex mu;
  std::vector<std::string> lines;
  SetJsonLogSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });

  ServerOptions options;
  options.num_workers = 1;
  options.slow_query_us = 1;  // every request overruns the budget
  auto server = DistanceServer::Start(
                    HopDbIndex::Build(TestGraph(100, /*seed=*/9)).ValueOrDie(),
                    options)
                    .ValueOrDie();
  auto client =
      DistanceClient::Connect("127.0.0.1", server->port()).ValueOrDie();
  ASSERT_TRUE(StartsWith(*client.RoundTrip("DIST 3 7"), "OK "));

  std::string slow_line;
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& line : lines) {
      if (line.find("\"event\":\"slow_query\"") != std::string::npos) {
        slow_line = line;
        return true;
      }
    }
    return false;
  }));
  EXPECT_NE(slow_line.find("\"verb\":\"dist\""), std::string::npos)
      << slow_line;
  EXPECT_NE(slow_line.find("\"total_us\":"), std::string::npos) << slow_line;
  EXPECT_NE(slow_line.find("\"queue_us\":"), std::string::npos) << slow_line;
  ASSERT_TRUE(WaitFor([&] { return server->metrics().slow_queries() >= 1; }));

  server->Stop();
  SetJsonLogSink(nullptr);  // restore stderr for later tests
}

TEST(ServerLifecycleTest, BindToBusyPortFails) {
  const EdgeList edges = TestGraph(100, /*seed=*/7);
  ServerOptions options;
  options.num_workers = 1;
  auto a = DistanceServer::Start(HopDbIndex::Build(edges).ValueOrDie(),
                                 options)
               .ValueOrDie();
  options.port = a->port();
  auto b = DistanceServer::Start(HopDbIndex::Build(edges).ValueOrDie(),
                                 options);
  EXPECT_FALSE(b.ok());
}

}  // namespace
}  // namespace hopdb
