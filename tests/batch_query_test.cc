// OneToManyEngine / ManyToManyDistances / KnnEngine: batch answers must
// equal pairwise index queries (which other suites pin to BFS/Dijkstra
// ground truth), and kNN must return the true k nearest in order.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "query/batch.h"
#include "query/knn.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

struct Fixture {
  CsrGraph graph;  // rank-relabeled
  TwoHopIndex index;
};

Fixture BuildFixture(EdgeList edges) {
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();
  auto built = BuildHopLabeling(*ranked);
  built.status().CheckOK();
  return Fixture{std::move(*ranked), std::move(built->index)};
}

struct BatchCase {
  std::string name;
  bool directed;
  bool weighted;
  uint64_t seed;
};

std::string BatchCaseName(const ::testing::TestParamInfo<BatchCase>& info) {
  return info.param.name + (info.param.directed ? "_dir" : "_und") +
         (info.param.weighted ? "_wgt" : "_unw") + "_s" +
         std::to_string(info.param.seed);
}

EdgeList MakeGraph(const BatchCase& c) {
  EdgeList edges;
  if (c.name == "glp") {
    GlpOptions glp;
    glp.num_vertices = 140;
    glp.seed = c.seed;
    edges = c.directed ? GenerateDirectedGlp(glp).ValueOrDie()
                       : GenerateGlp(glp).ValueOrDie();
  } else {
    ErOptions er;
    er.num_vertices = 100;
    er.num_edges = 170;
    er.directed = c.directed;
    er.seed = c.seed;
    edges = GenerateErdosRenyi(er).ValueOrDie();
  }
  if (c.weighted) {
    AssignUniformWeights(&edges, 1, 9, DeriveSeed(c.seed, 11));
  }
  return edges;
}

class BatchSweepTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchSweepTest, OneToManyMatchesPairwiseQueries) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  const VertexId n = fix.graph.num_vertices();
  Rng rng(GetParam().seed);
  std::vector<VertexId> targets;
  for (int i = 0; i < 25; ++i) {
    targets.push_back(static_cast<VertexId>(rng.Below(n)));
  }
  targets.push_back(targets.front());  // duplicate target positions

  OneToManyEngine engine(fix.index, targets);
  ASSERT_EQ(engine.targets().size(), targets.size());
  for (VertexId s = 0; s < n; ++s) {
    const std::vector<Distance> row = engine.Query(s);
    ASSERT_EQ(row.size(), targets.size());
    for (size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(row[j], fix.index.Query(s, targets[j]))
          << "s=" << s << " t=" << targets[j];
    }
  }
}

TEST_P(BatchSweepTest, ManyToManyMatchesPairwiseQueries) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  const VertexId n = fix.graph.num_vertices();
  Rng rng(GetParam().seed ^ 0x323);
  std::vector<VertexId> sources, targets;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(static_cast<VertexId>(rng.Below(n)));
    targets.push_back(static_cast<VertexId>(rng.Below(n)));
  }
  const auto matrix = ManyToManyDistances(fix.index, sources, targets);
  ASSERT_EQ(matrix.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(matrix[i][j], fix.index.Query(sources[i], targets[j]));
    }
  }
}

TEST_P(BatchSweepTest, KnnForwardMatchesSortedGroundTruth) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  const VertexId n = fix.graph.num_vertices();
  KnnEngine engine(fix.index, KnnEngine::Direction::kForward);
  Rng rng(GetParam().seed ^ 0x55);
  for (int round = 0; round < 8; ++round) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const uint32_t k = static_cast<uint32_t>(rng.Uniform(1, 20));
    const std::vector<Distance> truth = ExactDistances(fix.graph, s);

    std::vector<Distance> finite;
    for (VertexId v = 0; v < n; ++v) {
      if (v != s && truth[v] != kInfDistance) finite.push_back(truth[v]);
    }
    std::sort(finite.begin(), finite.end());

    const auto result = engine.Query(s, k);
    ASSERT_EQ(result.size(), std::min<size_t>(k, finite.size()));
    for (size_t i = 0; i < result.size(); ++i) {
      ASSERT_EQ(result[i].dist, finite[i]) << "rank " << i;  // order exact
      ASSERT_EQ(truth[result[i].vertex], result[i].dist);    // dist exact
    }
    // No duplicate vertices.
    std::vector<VertexId> ids;
    for (const auto& nb : result) ids.push_back(nb.vertex);
    std::sort(ids.begin(), ids.end());
    ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

TEST_P(BatchSweepTest, KnnBackwardMatchesReverseGroundTruth) {
  Fixture fix = BuildFixture(MakeGraph(GetParam()));
  const VertexId n = fix.graph.num_vertices();
  KnnEngine engine(fix.index, KnnEngine::Direction::kBackward);
  Rng rng(GetParam().seed ^ 0x66);
  for (int round = 0; round < 5; ++round) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const uint32_t k = 10;
    const std::vector<Distance> truth =
        ExactDistances(fix.graph, s, /*backward=*/true);
    std::vector<Distance> finite;
    for (VertexId v = 0; v < n; ++v) {
      if (v != s && truth[v] != kInfDistance) finite.push_back(truth[v]);
    }
    std::sort(finite.begin(), finite.end());

    const auto result = engine.Query(s, k);
    ASSERT_EQ(result.size(), std::min<size_t>(k, finite.size()));
    for (size_t i = 0; i < result.size(); ++i) {
      ASSERT_EQ(result[i].dist, finite[i]);
      ASSERT_EQ(truth[result[i].vertex], result[i].dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BatchSweep, BatchSweepTest,
    ::testing::Values(BatchCase{"glp", false, false, 21},
                      BatchCase{"glp", true, false, 22},
                      BatchCase{"glp", false, true, 23},
                      BatchCase{"glp", true, true, 24},
                      BatchCase{"er", false, false, 25},
                      BatchCase{"er", true, false, 26},
                      BatchCase{"er", true, true, 27}),
    BatchCaseName);

TEST(KnnEngineTest, IncludeSourceEmitsDistanceZeroFirst) {
  Fixture fix = BuildFixture(StarGraphGS());
  KnnEngine engine(fix.index, KnnEngine::Direction::kForward);
  const auto with = engine.Query(0, 3, /*include_source=*/true);
  ASSERT_FALSE(with.empty());
  ASSERT_EQ(with[0].vertex, 0u);
  ASSERT_EQ(with[0].dist, 0u);
  const auto without = engine.Query(0, 3);
  for (const auto& nb : without) ASSERT_NE(nb.vertex, 0u);
}

TEST(KnnEngineTest, KZeroAndOutOfRangeReturnEmpty) {
  Fixture fix = BuildFixture(PathGraph(5));
  KnnEngine engine(fix.index, KnnEngine::Direction::kForward);
  ASSERT_TRUE(engine.Query(0, 0).empty());
  ASSERT_TRUE(engine.Query(1000, 5).empty());
}

TEST(KnnEngineTest, DisconnectedComponentsAreNeverReturned) {
  Fixture fix = BuildFixture(TwoTriangles());
  KnnEngine engine(fix.index, KnnEngine::Direction::kForward);
  // Ask for more neighbors than the component holds: the other triangle
  // must not leak in.
  const auto result = engine.Query(0, 10);
  ASSERT_EQ(result.size(), 2u);  // the two other triangle vertices
  for (const auto& nb : result) ASSERT_LT(nb.vertex, 3u);
}

TEST(OneToManyEngineTest, OutOfRangeSourceIsUnreachable) {
  Fixture fix = BuildFixture(PathGraph(5));
  OneToManyEngine engine(fix.index, {0, 1, 2});
  const auto row = engine.Query(1000);
  ASSERT_EQ(row.size(), 3u);
  for (const Distance d : row) EXPECT_EQ(d, kInfDistance);
}

TEST(KnnEngineTest, SingleVertexGraphHasNoNeighbors) {
  // One isolated edge pair keeps CsrGraph happy; vertex 2 is isolated.
  EdgeList edges(3, false);
  edges.Add(0, 1);
  edges.Normalize();
  Fixture fix = BuildFixture(std::move(edges));
  KnnEngine engine(fix.index, KnnEngine::Direction::kForward);
  EXPECT_TRUE(engine.Query(2, 5).empty());
  const auto with_self = engine.Query(2, 5, /*include_source=*/true);
  ASSERT_EQ(with_self.size(), 1u);
  EXPECT_EQ(with_self[0].dist, 0u);
}

TEST(OneToManyEngineTest, EmptyTargetsGiveEmptyRows) {
  Fixture fix = BuildFixture(PathGraph(4));
  OneToManyEngine engine(fix.index, {});
  ASSERT_TRUE(engine.Query(0).empty());
  ASSERT_EQ(engine.TotalBucketEntries(), 0u);
}

}  // namespace
}  // namespace hopdb
