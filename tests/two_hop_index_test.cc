#include "labeling/two_hop_index.h"

#include <gtest/gtest.h>

#include "io/temp_dir.h"
#include "util/serde.h"
#include "labeling/label_entry.h"

namespace hopdb {
namespace {

TEST(LabelEntryTest, LookupPivot) {
  LabelVector l = {{1, 5}, {4, 2}, {9, 7}};
  EXPECT_EQ(LookupPivot(l, 1), 5u);
  EXPECT_EQ(LookupPivot(l, 4), 2u);
  EXPECT_EQ(LookupPivot(l, 9), 7u);
  EXPECT_EQ(LookupPivot(l, 0), kInfDistance);
  EXPECT_EQ(LookupPivot(l, 5), kInfDistance);
  EXPECT_EQ(LookupPivot(l, 100), kInfDistance);
  EXPECT_EQ(LookupPivot({}, 3), kInfDistance);
}

TEST(LabelEntryTest, UpperBoundPivot) {
  LabelVector l = {{1, 5}, {4, 2}, {9, 7}};
  EXPECT_EQ(UpperBoundPivot(l, 0), 0u);
  EXPECT_EQ(UpperBoundPivot(l, 1), 1u);
  EXPECT_EQ(UpperBoundPivot(l, 4), 2u);
  EXPECT_EQ(UpperBoundPivot(l, 10), 3u);
}

TEST(LabelEntryTest, IntersectLabels) {
  LabelVector a = {{1, 5}, {4, 2}, {9, 7}};
  LabelVector b = {{2, 1}, {4, 3}, {9, 1}};
  EXPECT_EQ(IntersectLabels(a, b), 5u);  // min(2+3, 7+1)
  LabelVector c = {{3, 1}};
  EXPECT_EQ(IntersectLabels(a, c), kInfDistance);
  EXPECT_EQ(IntersectLabels({}, b), kInfDistance);
}

TEST(LabelEntryTest, IntersectSaturates) {
  LabelVector a = {{1, kInfDistance - 1}};
  LabelVector b = {{1, kInfDistance - 1}};
  EXPECT_EQ(IntersectLabels(a, b), kInfDistance);
}

// Small hand-built undirected index over a path 2 - 1 - 0 (ranked ids):
// L(1) = {(0, 1)}, L(2) = {(0, 2), (1, 1)}.
TwoHopIndex PathIndex() {
  std::vector<LabelVector> out(3);
  out[1] = {{0, 1}};
  out[2] = {{0, 2}, {1, 1}};
  return TwoHopIndex(std::move(out), {}, /*directed=*/false);
}

TEST(TwoHopIndexTest, UndirectedQueries) {
  TwoHopIndex idx = PathIndex();
  EXPECT_EQ(idx.Query(0, 0), 0u);
  EXPECT_EQ(idx.Query(1, 0), 1u);  // trivial pivot 0 side
  EXPECT_EQ(idx.Query(0, 1), 1u);
  EXPECT_EQ(idx.Query(1, 2), 1u);
  EXPECT_EQ(idx.Query(2, 1), 1u);
  EXPECT_EQ(idx.Query(0, 2), 2u);
}

TEST(TwoHopIndexTest, DirectedQueries) {
  // Directed path 1 -> 0 -> 2: Lout(1) = {(0,1)}, Lin(2) = {(0,1)}.
  std::vector<LabelVector> out(3), in(3);
  out[1] = {{0, 1}};
  in[2] = {{0, 1}};
  TwoHopIndex idx(std::move(out), std::move(in), /*directed=*/true);
  EXPECT_EQ(idx.Query(1, 2), 2u);
  EXPECT_EQ(idx.Query(2, 1), kInfDistance);
  EXPECT_EQ(idx.Query(1, 0), 1u);
  EXPECT_EQ(idx.Query(0, 2), 1u);
  EXPECT_EQ(idx.Query(2, 0), kInfDistance);
}

TEST(TwoHopIndexTest, Stats) {
  TwoHopIndex idx = PathIndex();
  EXPECT_EQ(idx.TotalEntries(), 3u);
  EXPECT_DOUBLE_EQ(idx.AvgLabelSize(), 1.0);
  EXPECT_EQ(idx.PaperSizeBytes(), 3u * 5u + 3u * 8u);
  auto per_pivot = idx.EntriesPerPivot();
  EXPECT_EQ(per_pivot[0], 2u);
  EXPECT_EQ(per_pivot[1], 1u);
  EXPECT_EQ(per_pivot[2], 0u);
}

TEST(TwoHopIndexTest, ValidateAcceptsGoodIndex) {
  TwoHopIndex idx = PathIndex();
  EXPECT_TRUE(idx.Validate(/*ranked=*/true).ok());
}

TEST(TwoHopIndexTest, ValidateRejectsUnsorted) {
  std::vector<LabelVector> out(3);
  out[2] = {{1, 1}, {0, 2}};  // out of order
  TwoHopIndex idx(std::move(out), {}, false);
  EXPECT_FALSE(idx.Validate(true).ok());
}

TEST(TwoHopIndexTest, ValidateRejectsTrivialEntry) {
  std::vector<LabelVector> out(2);
  out[1] = {{1, 0}};
  TwoHopIndex idx(std::move(out), {}, false);
  EXPECT_FALSE(idx.Validate(true).ok());
}

TEST(TwoHopIndexTest, ValidateRejectsLowRankPivot) {
  std::vector<LabelVector> out(3);
  out[1] = {{2, 1}};  // pivot ranked below owner
  TwoHopIndex idx(std::move(out), {}, false);
  EXPECT_FALSE(idx.Validate(/*ranked=*/true).ok());
  EXPECT_TRUE(idx.Validate(/*ranked=*/false).ok());  // fine for IS-Label
}

TEST(TwoHopIndexTest, SaveLoadRoundTrip) {
  auto dir = TempDir::Create("thi");
  ASSERT_TRUE(dir.ok());
  std::vector<LabelVector> out(3), in(3);
  out[1] = {{0, 1}};
  out[2] = {{0, 2}, {1, 1}};
  in[2] = {{0, 4}};
  TwoHopIndex idx(std::move(out), std::move(in), /*directed=*/true);
  std::string path = dir->File("index.hli");
  ASSERT_TRUE(idx.Save(path).ok());
  auto back = TwoHopIndex::Load(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->directed());
  EXPECT_EQ(back->num_vertices(), 3u);
  EXPECT_EQ(back->TotalEntries(), 4u);
  for (VertexId s = 0; s < 3; ++s) {
    for (VertexId t = 0; t < 3; ++t) {
      EXPECT_EQ(back->Query(s, t), idx.Query(s, t));
    }
  }
}

TEST(TwoHopIndexTest, LoadRejectsGarbage) {
  auto dir = TempDir::Create("thi");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("junk");
  ASSERT_TRUE(WriteStringToFile(path, "garbage").ok());
  EXPECT_FALSE(TwoHopIndex::Load(path).ok());
}

TEST(QueryLabelHalvesTest, TrivialPivots) {
  // out_s contains pivot t directly.
  LabelVector out_s = {{2, 3}};
  EXPECT_EQ(QueryLabelHalves(out_s, {}, 5, 2), 3u);
  // in_t contains pivot s directly.
  LabelVector in_t = {{5, 4}};
  EXPECT_EQ(QueryLabelHalves({}, in_t, 5, 9), 4u);
  // Same vertex.
  EXPECT_EQ(QueryLabelHalves({}, {}, 3, 3), 0u);
  // Nothing in common.
  EXPECT_EQ(QueryLabelHalves(out_s, in_t, 7, 8), kInfDistance);
}

TEST(TwoHopIndexIoTest, TruncatedFilesFailCleanly) {
  std::vector<LabelVector> out(3), in(3);
  out[1] = {{0, 1}};
  in[2] = {{0, 2}, {1, 1}};
  TwoHopIndex index(std::move(out), std::move(in), /*directed=*/true);

  auto dir = TempDir::Create("hli_fail");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->File("idx.hli");
  ASSERT_TRUE(index.Save(path).ok());
  std::string blob;
  ASSERT_TRUE(ReadFileToString(path, &blob).ok());

  // Every strict prefix must fail to load, never crash or mis-load.
  const std::string trunc_path = dir->File("trunc.hli");
  for (size_t keep = 0; keep < blob.size(); keep += 3) {
    ASSERT_TRUE(WriteStringToFile(trunc_path, blob.substr(0, keep)).ok());
    EXPECT_FALSE(TwoHopIndex::Load(trunc_path).ok()) << "kept " << keep;
  }

  // Wrong magic.
  std::string bad = blob;
  bad[0] = 'Z';
  ASSERT_TRUE(WriteStringToFile(trunc_path, bad).ok());
  EXPECT_FALSE(TwoHopIndex::Load(trunc_path).ok());
}

}  // namespace
}  // namespace hopdb
