#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include "gen/glp.h"
#include "io/temp_dir.h"
#include "util/serde.h"

namespace hopdb {
namespace {

TEST(TextGraphTest, ParsesBasicEdgeList) {
  std::string text =
      "# comment\n"
      "% konect-style comment\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "2 0\n";
  TextGraphOptions opt;
  opt.directed = true;
  auto edges = ParseTextEdgeList(text, opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_edges(), 3u);
  EXPECT_EQ(edges->num_vertices(), 3u);
  EXPECT_FALSE(edges->weighted());
}

TEST(TextGraphTest, ParsesWeights) {
  TextGraphOptions opt;
  opt.directed = false;
  auto edges = ParseTextEdgeList("0 1 5\n1 2 3\n", opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->weighted());
  EXPECT_EQ(edges->edges()[0].weight, 5u);
}

TEST(TextGraphTest, IgnoresWeightsWhenAsked) {
  TextGraphOptions opt;
  opt.read_weights = false;
  auto edges = ParseTextEdgeList("0 1 5\n", opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_FALSE(edges->weighted());
  EXPECT_EQ(edges->edges()[0].weight, 1u);
}

TEST(TextGraphTest, CompactsSparseIds) {
  TextGraphOptions opt;
  auto edges = ParseTextEdgeList("1000000 2000000\n2000000 5\n", opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_vertices(), 3u);
}

TEST(TextGraphTest, RejectsMalformedLines) {
  TextGraphOptions opt;
  EXPECT_FALSE(ParseTextEdgeList("0\n", opt).ok());
  EXPECT_FALSE(ParseTextEdgeList("a b\n", opt).ok());
  EXPECT_FALSE(ParseTextEdgeList("0 1 2 3\n", opt).ok());
  EXPECT_FALSE(ParseTextEdgeList("0 1 0\n", opt).ok());  // zero weight
}

TEST(TextGraphTest, TabSeparatedAndCrlf) {
  TextGraphOptions opt;
  auto edges = ParseTextEdgeList("0\t1\r\n1\t2\r\n", opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_edges(), 2u);
}

TEST(TextGraphTest, FileRoundTrip) {
  auto dir = TempDir::Create("graph_io");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 500;
  glp.seed = 3;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  std::string path = dir->File("g.txt");
  ASSERT_TRUE(WriteTextEdgeList(*edges, path).ok());
  TextGraphOptions opt;
  opt.directed = false;
  auto back = ReadTextEdgeList(path, opt);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), edges->num_edges());
}

TEST(BinaryGraphTest, RoundTripDirectedWeighted) {
  auto dir = TempDir::Create("graph_io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges(5, /*directed=*/true);
  edges.Add(0, 1, 3);
  edges.Add(1, 2, 7);
  edges.Add(4, 0, 2);
  edges.Normalize();
  std::string path = dir->File("g.bin");
  ASSERT_TRUE(WriteBinaryGraph(edges, path).ok());
  auto back = ReadBinaryGraph(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_vertices(), edges.num_vertices());
  EXPECT_TRUE(back->directed());
  EXPECT_TRUE(back->weighted());
  ASSERT_EQ(back->num_edges(), edges.num_edges());
  for (size_t i = 0; i < edges.num_edges(); ++i) {
    EXPECT_EQ(back->edges()[i], edges.edges()[i]);
  }
}

TEST(BinaryGraphTest, RejectsWrongMagic) {
  auto dir = TempDir::Create("graph_io");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("bad.bin");
  ASSERT_TRUE(WriteStringToFile(path, "NOTAGRAPH").ok());
  EXPECT_FALSE(ReadBinaryGraph(path).ok());
}

}  // namespace
}  // namespace hopdb
