#include "labeling/disk_index.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "util/serde.h"
#include "labeling/builder.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(
      g, g.directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

TEST(DiskIndexTest, RoundTripUndirected) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 3;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto built = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(built.ok());

  std::string path = dir->File("idx.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, path).ok());
  auto disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk->num_vertices(), ranked->num_vertices());
  EXPECT_FALSE(disk->directed());

  for (VertexId s = 0; s < ranked->num_vertices(); s += 13) {
    for (VertexId t = 0; t < ranked->num_vertices(); t += 17) {
      ASSERT_EQ(disk->Query(s, t), built->index.Query(s, t))
          << "pair (" << s << ", " << t << ")";
    }
  }
}

TEST(DiskIndexTest, RoundTripDirected) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto built = BuildHopLabeling(*g, {});
  ASSERT_TRUE(built.ok());
  std::string path = dir->File("idx.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, path).ok());
  auto disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_TRUE(disk->directed());
  ASSERT_TRUE(VerifyExactDistances(
                  *g, [&](VertexId s, VertexId t) { return disk->Query(s, t); })
                  .ok());
}

TEST(DiskIndexTest, EightBitNarrowing) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  // Unweighted small-diameter graph: distances < 255 -> 5-byte entries.
  auto ranked = RankedGraph(StarGraph(50));
  ASSERT_TRUE(ranked.ok());
  auto built = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(built.ok());
  std::string narrow = dir->File("narrow.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, narrow).ok());

  // Weighted version: distances up to ~1000 -> 8-byte entries.
  EdgeList weighted = StarGraph(50);
  AssignUniformWeights(&weighted, 300, 1000, 5);
  auto ranked_w = RankedGraph(weighted);
  ASSERT_TRUE(ranked_w.ok());
  auto built_w = BuildHopLabeling(*ranked_w, {});
  ASSERT_TRUE(built_w.ok());
  std::string wide = dir->File("wide.hdi");
  ASSERT_TRUE(DiskIndex::Write(built_w->index, wide).ok());

  auto n = DiskIndex::Open(narrow);
  auto w = DiskIndex::Open(wide);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(w.ok());
  EXPECT_LT(n->file_size_bytes(), w->file_size_bytes());
  EXPECT_EQ(w->Query(1, 2),
            built_w->index.Query(1, 2));  // wide distances intact
}

TEST(DiskIndexTest, QueryCostsTwoLabelReads) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 7;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto built = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(built.ok());
  std::string path = dir->File("idx.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, path).ok());
  auto disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok());

  disk->ResetStats();
  disk->Query(200, 250);
  // The paper's disk query = 2 random label accesses. Labels here are
  // small, so each is at most a couple of blocks.
  EXPECT_LE(disk->stats().read_calls, 2u);
  EXPECT_GE(disk->stats().blocks_read, 1u);
}

TEST(DiskIndexTest, ToMemoryMatches) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto built = BuildHopLabeling(*g, {});
  ASSERT_TRUE(built.ok());
  std::string path = dir->File("idx.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, path).ok());
  auto disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  auto mem = disk->ToMemory();
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->TotalEntries(), built->index.TotalEntries());
  for (VertexId s = 0; s < 8; ++s) {
    for (VertexId t = 0; t < 8; ++t) {
      EXPECT_EQ(mem->Query(s, t), built->index.Query(s, t));
    }
  }
}

TEST(DiskIndexTest, RejectsGarbage) {
  auto dir = TempDir::Create("disk_index");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("junk");
  ASSERT_TRUE(WriteStringToFile(path, "not an index at all").ok());
  EXPECT_FALSE(DiskIndex::Open(path).ok());
}

TEST(DiskIndexTest, TruncatedFilesFailToOpen) {
  auto base = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(base.ok());
  auto built = BuildHopLabeling(*base);
  ASSERT_TRUE(built.ok());

  auto dir = TempDir::Create("hdi_fail");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->File("idx.hdi");
  ASSERT_TRUE(DiskIndex::Write(built->index, path).ok());
  std::string blob;
  ASSERT_TRUE(ReadFileToString(path, &blob).ok());

  const std::string trunc_path = dir->File("trunc.hdi");
  for (const size_t keep :
       {size_t{0}, size_t{3}, size_t{11}, blob.size() / 2,
        blob.size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(trunc_path, blob.substr(0, keep)).ok());
    EXPECT_FALSE(DiskIndex::Open(trunc_path).ok()) << "kept " << keep;
  }
}

}  // namespace
}  // namespace hopdb
