#include <gtest/gtest.h>

#include <sys/stat.h>

#include "io/block_file.h"
#include "io/io_stats.h"
#include "io/record_stream.h"
#include "io/temp_dir.h"
#include "util/serde.h"

namespace hopdb {
namespace {

TEST(IoStatsTest, BlockAccounting) {
  IoStats s;
  s.RecordRead(100, 64);    // 2 blocks
  s.RecordRead(64, 64);     // 1 block
  s.RecordWrite(129, 64);   // 3 blocks
  EXPECT_EQ(s.bytes_read, 164u);
  EXPECT_EQ(s.blocks_read, 3u);
  EXPECT_EQ(s.bytes_written, 129u);
  EXPECT_EQ(s.blocks_written, 3u);
  EXPECT_EQ(s.read_calls, 2u);
  EXPECT_EQ(s.TotalBlocks(), 6u);
  IoStats t;
  t.Add(s);
  t.Add(s);
  EXPECT_EQ(t.blocks_read, 6u);
  t.Reset();
  EXPECT_EQ(t.TotalBlocks(), 0u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(TempDirTest, CreatesAndCleans) {
  std::string path;
  {
    auto dir = TempDir::Create("hopdb_io_test");
    ASSERT_TRUE(dir.ok());
    path = dir->path();
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_TRUE(S_ISDIR(st.st_mode));
    // Put some content in, including a nested directory.
    ASSERT_TRUE(WriteStringToFile(dir->File("a.txt"), "hello").ok());
    ASSERT_EQ(::mkdir(dir->File("sub").c_str(), 0755), 0);
    ASSERT_TRUE(WriteStringToFile(dir->File("sub/b.txt"), "x").ok());
  }
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0) << "temp dir must be removed";
}

TEST(BlockFileTest, WriteReadAt) {
  auto dir = TempDir::Create("blockfile");
  ASSERT_TRUE(dir.ok());
  auto file = BlockFile::OpenWrite(dir->File("f"), /*block_size=*/16);
  ASSERT_TRUE(file.ok());
  std::string payload = "0123456789abcdef0123456789abcdef";
  ASSERT_TRUE(file->Append(payload.data(), payload.size()).ok());
  EXPECT_EQ(file->size(), payload.size());
  char buf[8];
  ASSERT_TRUE(file->ReadAt(4, buf, 8).ok());
  EXPECT_EQ(std::string(buf, 8), "456789ab");
  // I/O accounting: one 32-byte write (2 blocks) + one 8-byte read.
  EXPECT_EQ(file->stats().blocks_written, 2u);
  EXPECT_EQ(file->stats().blocks_read, 1u);
}

TEST(BlockFileTest, ReadPastEofFails) {
  auto dir = TempDir::Create("blockfile");
  ASSERT_TRUE(dir.ok());
  {
    auto file = BlockFile::OpenWrite(dir->File("f"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("abc", 3).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto file = BlockFile::OpenRead(dir->File("f"));
  ASSERT_TRUE(file.ok());
  char buf[8];
  EXPECT_FALSE(file->ReadAt(0, buf, 8).ok());
  ASSERT_TRUE(file->ReadAt(0, buf, 3).ok());
}

TEST(BlockFileTest, OpenMissingFails) {
  EXPECT_FALSE(BlockFile::OpenRead("/nonexistent/f").ok());
}

struct TestRec {
  uint32_t a;
  uint32_t b;
};

TEST(RecordStreamTest, RoundTrip) {
  auto dir = TempDir::Create("recs");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("recs.bin");
  {
    auto writer = RecordWriter<TestRec>::Open(path, kDefaultBlockSize,
                                              /*buffer_records=*/7);
    ASSERT_TRUE(writer.ok());
    for (uint32_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer->Append({i, i * 2}).ok());
    }
    EXPECT_EQ(writer->records_written(), 1000u);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = RecordReader<TestRec>::Open(path, kDefaultBlockSize,
                                            /*buffer_records=*/13);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_records(), 1000u);
  TestRec rec;
  uint32_t count = 0;
  while (reader->Next(&rec)) {
    EXPECT_EQ(rec.a, count);
    EXPECT_EQ(rec.b, count * 2);
    ++count;
  }
  EXPECT_EQ(count, 1000u);
}

TEST(RecordStreamTest, PeekDoesNotConsume) {
  auto dir = TempDir::Create("recs");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("r");
  ASSERT_TRUE(WriteAllRecords<TestRec>(path, {{1, 2}, {3, 4}}).ok());
  auto reader = RecordReader<TestRec>::Open(path);
  ASSERT_TRUE(reader.ok());
  TestRec rec;
  ASSERT_TRUE(reader->Peek(&rec));
  EXPECT_EQ(rec.a, 1u);
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.a, 1u);
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.a, 3u);
  EXPECT_FALSE(reader->Peek(&rec));
  EXPECT_FALSE(reader->Next(&rec));
}

TEST(RecordStreamTest, EmptyFile) {
  auto dir = TempDir::Create("recs");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("empty");
  ASSERT_TRUE(WriteAllRecords<TestRec>(path, {}).ok());
  auto all = ReadAllRecords<TestRec>(path);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

}  // namespace
}  // namespace hopdb
