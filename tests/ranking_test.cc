#include "graph/ranking.h"

#include <gtest/gtest.h>

#include "gen/small_graphs.h"

namespace hopdb {
namespace {

TEST(RankingTest, DegreeOrderStar) {
  auto g = CsrGraph::FromEdgeList(StarGraph(5));
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kDegree);
  EXPECT_EQ(m.rank_to_orig[0], 0u);  // the hub ranks first
  EXPECT_EQ(m.ToInternal(0), 0u);
  // Leaves tie; ties break by original id.
  EXPECT_EQ(m.rank_to_orig[1], 1u);
  EXPECT_EQ(m.rank_to_orig[5], 5u);
}

TEST(RankingTest, MappingIsInverse) {
  auto g = CsrGraph::FromEdgeList(GridGraph(4, 4));
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kDegree);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(m.ToInternal(m.ToOriginal(v)), v);
    EXPECT_EQ(m.ToOriginal(m.ToInternal(v)), v);
  }
}

TEST(RankingTest, InOutProductPrefersBalancedHubs) {
  // Vertex 0: in 3 / out 3 (product 16 with +1 smoothing); vertex 1: in 0
  // / out 6 (product 7). Degree ranking would tie them at 6; the product
  // ranking must put 0 first.
  EdgeList e(8, /*directed=*/true);
  for (VertexId v = 2; v <= 4; ++v) {
    e.Add(0, v);
    e.Add(v, 0);
  }
  for (VertexId v = 2; v <= 7; ++v) e.Add(1, v);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kInOutProduct);
  EXPECT_EQ(m.rank_to_orig[0], 0u);
  EXPECT_EQ(m.rank_to_orig[1], 1u);
}

TEST(RankingTest, IdentityKeepsOrder) {
  auto g = CsrGraph::FromEdgeList(PathGraph(6));
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kIdentity);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(m.rank_to_orig[v], v);
}

TEST(RankingTest, DeterministicTieBreak) {
  auto g = CsrGraph::FromEdgeList(CycleGraph(10));
  ASSERT_TRUE(g.ok());
  RankMapping a = ComputeRanking(*g, RankingPolicy::kDegree);
  RankMapping b = ComputeRanking(*g, RankingPolicy::kDegree);
  EXPECT_EQ(a.rank_to_orig, b.rank_to_orig);
  // All degrees equal: rank order must be id order.
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(a.rank_to_orig[v], v);
}

TEST(RankingTest, RelabelPreservesStructure) {
  EdgeList e(4, /*directed=*/true);
  e.Add(3, 2, 5);  // make vertex 3 and 2 high-degree
  e.Add(2, 3, 5);
  e.Add(3, 0, 1);
  e.Add(2, 1, 2);
  e.Normalize();
  auto g = CsrGraph::FromEdgeList(e);
  ASSERT_TRUE(g.ok());
  RankMapping m = ComputeRanking(*g, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*g, m);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->num_edges(), g->num_edges());
  // Every original arc must exist in internal coordinates with the same
  // weight.
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    for (const Arc& a : g->OutArcs(u)) {
      EXPECT_EQ(ranked->ArcWeight(m.ToInternal(u), m.ToInternal(a.to)),
                a.weight);
    }
  }
}

TEST(RankingTest, CustomOrder) {
  RankMapping m = RankingFromOrder({2, 0, 1});
  EXPECT_EQ(m.ToInternal(2), 0u);
  EXPECT_EQ(m.ToInternal(0), 1u);
  EXPECT_EQ(m.ToOriginal(2), 1u);
}

TEST(RankingTest, RelabelSizeMismatchFails) {
  auto g = CsrGraph::FromEdgeList(PathGraph(4));
  ASSERT_TRUE(g.ok());
  RankMapping m = RankingFromOrder({0, 1, 2});
  EXPECT_FALSE(RelabelByRank(*g, m).ok());
}

}  // namespace
}  // namespace hopdb
