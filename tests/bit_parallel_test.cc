#include "labeling/bit_parallel.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "labeling/builder.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(g, RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

Result<BitParallelIndex> BuildBp(const CsrGraph& ranked,
                                 const BitParallelOptions& opts = {}) {
  HOPDB_ASSIGN_OR_RETURN(BuildOutput out, BuildHopLabeling(ranked, {}));
  return BitParallelIndex::Transform(std::move(out.index), ranked, opts);
}

TEST(BitParallelTest, StarGraph) {
  auto ranked = RankedGraph(StarGraphGS());
  ASSERT_TRUE(ranked.ok());
  BitParallelOptions opts;
  opts.num_roots = 1;
  auto bp = BuildBp(*ranked, opts);
  ASSERT_TRUE(bp.ok());
  // All leaf entries fold into the single root's tuples.
  EXPECT_EQ(bp->NormalEntries(), 0u);
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) { return bp->Query(s, t); })
                  .ok());
}

TEST(BitParallelTest, PathGraph) {
  auto ranked = RankedGraph(PathGraph(40));
  ASSERT_TRUE(ranked.ok());
  BitParallelOptions opts;
  opts.num_roots = 4;
  auto bp = BuildBp(*ranked, opts);
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) { return bp->Query(s, t); })
                  .ok());
}

TEST(BitParallelTest, DisconnectedGraph) {
  auto ranked = RankedGraph(TwoTriangles());
  ASSERT_TRUE(ranked.ok());
  BitParallelOptions opts;
  opts.num_roots = 2;
  auto bp = BuildBp(*ranked, opts);
  ASSERT_TRUE(bp.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) { return bp->Query(s, t); })
                  .ok());
}

class BpSweepTest : public ::testing::TestWithParam<
                        std::tuple<uint32_t, uint64_t>> {};

TEST_P(BpSweepTest, TransformPreservesAllAnswers) {
  auto [num_roots, seed] = GetParam();
  GlpOptions glp;
  glp.num_vertices = 500;
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto base = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(base.ok());
  TwoHopIndex reference = base->index;  // copy for comparison

  BitParallelOptions opts;
  opts.num_roots = num_roots;
  auto bp = BitParallelIndex::Transform(std::move(base->index), *ranked,
                                        opts);
  ASSERT_TRUE(bp.ok());
  for (VertexId s = 0; s < ranked->num_vertices(); s += 7) {
    for (VertexId t = 0; t < ranked->num_vertices(); t += 11) {
      ASSERT_EQ(bp->Query(s, t), reference.Query(s, t))
          << "pair (" << s << ", " << t << ") roots=" << num_roots;
    }
  }
  // Folding must shrink the normal label count.
  EXPECT_LT(bp->NormalEntries(), reference.TotalEntries());
  EXPECT_GT(bp->BpTuples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RootsAndSeeds, BpSweepTest,
    ::testing::Combine(::testing::Values(1u, 8u, 50u, 64u),
                       ::testing::Values(1u, 2u)),
    [](const auto& param_info) {
      return "roots" + std::to_string(std::get<0>(param_info.param)) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

TEST(BitParallelTest, RejectsDirected) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto base = BuildHopLabeling(*g, {});
  ASSERT_TRUE(base.ok());
  auto bp = BitParallelIndex::Transform(std::move(base->index), *g, {});
  ASSERT_FALSE(bp.ok());
  EXPECT_EQ(bp.status().code(), StatusCode::kUnimplemented);
}

TEST(BitParallelTest, RejectsWeighted) {
  EdgeList e = GridGraph(4, 4);
  AssignUniformWeights(&e, 1, 5, 3);
  auto ranked = RankedGraph(e);
  ASSERT_TRUE(ranked.ok());
  auto base = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(base.ok());
  auto bp = BitParallelIndex::Transform(std::move(base->index), *ranked, {});
  ASSERT_FALSE(bp.ok());
  EXPECT_EQ(bp.status().code(), StatusCode::kUnimplemented);
}

TEST(BitParallelTest, RejectsBadRootCount) {
  auto ranked = RankedGraph(PathGraph(5));
  ASSERT_TRUE(ranked.ok());
  auto base = BuildHopLabeling(*ranked, {});
  ASSERT_TRUE(base.ok());
  BitParallelOptions opts;
  opts.num_roots = 65;
  auto bp = BitParallelIndex::Transform(std::move(base->index), *ranked,
                                        opts);
  EXPECT_FALSE(bp.ok());
}

TEST(BitParallelTest, SizeAccountingPositive) {
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.seed = 9;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto bp = BuildBp(*ranked);
  ASSERT_TRUE(bp.ok());
  EXPECT_GT(bp->PaperSizeBytes(), 0u);
  EXPECT_EQ(bp->num_roots(), 50u);
}

}  // namespace
}  // namespace hopdb
