#include "io/external_sorter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "io/temp_dir.h"
#include "util/random.h"

namespace hopdb {
namespace {

struct Rec {
  uint64_t key;
  uint32_t payload;
};

struct RecLess {
  bool operator()(const Rec& a, const Rec& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.payload < b.payload;
  }
};

std::vector<Rec> MakeRandom(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rec> recs;
  recs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    recs.push_back({rng.Below(1000), static_cast<uint32_t>(rng.Below(100))});
  }
  return recs;
}

void CheckSorted(ExternalSorter<Rec, RecLess>* sorter, std::vector<Rec> input) {
  std::sort(input.begin(), input.end(), RecLess{});
  Rec rec;
  size_t i = 0;
  while (sorter->Next(&rec)) {
    ASSERT_LT(i, input.size());
    EXPECT_EQ(rec.key, input[i].key) << "at " << i;
    EXPECT_EQ(rec.payload, input[i].payload) << "at " << i;
    ++i;
  }
  EXPECT_EQ(i, input.size());
}

TEST(ExternalSorterTest, InMemoryWhenItFits) {
  auto dir = TempDir::Create("sort");
  ASSERT_TRUE(dir.ok());
  auto input = MakeRandom(500, 1);
  ExternalSorter<Rec, RecLess> sorter(dir->File("s"), 1 << 20);
  for (const Rec& r : input) ASSERT_TRUE(sorter.Add(r).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.num_runs(), 0u) << "should not have spilled";
  CheckSorted(&sorter, input);
}

TEST(ExternalSorterTest, SpillsAndMerges) {
  auto dir = TempDir::Create("sort");
  ASSERT_TRUE(dir.ok());
  auto input = MakeRandom(10000, 2);
  // Tiny budget: ~85 records per run -> > 100 runs.
  ExternalSorter<Rec, RecLess> sorter(dir->File("s"), 1024);
  for (const Rec& r : input) ASSERT_TRUE(sorter.Add(r).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 10u);
  EXPECT_EQ(sorter.total_records(), input.size());
  CheckSorted(&sorter, input);
  EXPECT_GT(sorter.TotalIoStats().bytes_written, 0u);
  sorter.Cleanup();
}

TEST(ExternalSorterTest, EmptyInput) {
  auto dir = TempDir::Create("sort");
  ASSERT_TRUE(dir.ok());
  ExternalSorter<Rec, RecLess> sorter(dir->File("s"), 1024);
  ASSERT_TRUE(sorter.Finish().ok());
  Rec rec;
  EXPECT_FALSE(sorter.Next(&rec));
}

TEST(ExternalSorterTest, StableAcrossBudgets) {
  // The merged output must be identical no matter how many runs existed.
  auto dir = TempDir::Create("sort");
  ASSERT_TRUE(dir.ok());
  auto input = MakeRandom(5000, 3);
  std::vector<Rec> small_out, big_out;
  for (size_t budget : {512u, 1u << 22}) {
    // Two-step concatenation sidesteps a GCC 12 -Wrestrict false
    // positive (PR105651) on `const char* + std::string&&`.
    std::string run_name = "s";
    run_name += std::to_string(budget);
    ExternalSorter<Rec, RecLess> sorter(dir->File(run_name), budget);
    for (const Rec& r : input) ASSERT_TRUE(sorter.Add(r).ok());
    ASSERT_TRUE(sorter.Finish().ok());
    auto& out = budget == 512u ? small_out : big_out;
    Rec rec;
    while (sorter.Next(&rec)) out.push_back(rec);
    sorter.Cleanup();
  }
  ASSERT_EQ(small_out.size(), big_out.size());
  for (size_t i = 0; i < small_out.size(); ++i) {
    EXPECT_EQ(small_out[i].key, big_out[i].key);
    EXPECT_EQ(small_out[i].payload, big_out[i].payload);
  }
}

TEST(ExternalSorterTest, DuplicateKeysAllSurvive) {
  auto dir = TempDir::Create("sort");
  ASSERT_TRUE(dir.ok());
  ExternalSorter<Rec, RecLess> sorter(dir->File("s"), 256);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sorter.Add({7, static_cast<uint32_t>(i % 3)}).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  Rec rec;
  size_t count = 0;
  uint32_t last = 0;
  while (sorter.Next(&rec)) {
    EXPECT_EQ(rec.key, 7u);
    EXPECT_GE(rec.payload, last);
    last = rec.payload;
    ++count;
  }
  EXPECT_EQ(count, 1000u);
  sorter.Cleanup();
}

}  // namespace
}  // namespace hopdb
