#include "util/serde.h"

#include <gtest/gtest.h>

#include "io/temp_dir.h"

namespace hopdb {
namespace {

TEST(SerdeTest, RoundTripPrimitives) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  ByteReader reader(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SerdeTest, LittleEndianLayout) {
  std::string buf;
  PutU32(&buf, 0x01020304);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(SerdeTest, ReaderBoundsChecked) {
  std::string buf = "ab";
  ByteReader reader(buf);
  uint32_t v = 0;
  EXPECT_EQ(reader.ReadU32(&v).code(), StatusCode::kOutOfRange);
  uint8_t b = 0;
  EXPECT_TRUE(reader.ReadU8(&b).ok());
  EXPECT_TRUE(reader.Skip(1).ok());
  EXPECT_EQ(reader.Skip(1).code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, EncodeDecodeInPlace) {
  uint8_t buf[8];
  EncodeU32(77, buf);
  EXPECT_EQ(DecodeU32(buf), 77u);
  EncodeU64(1ull << 40, buf);
  EXPECT_EQ(DecodeU64(buf), 1ull << 40);
}

TEST(SerdeFileTest, FileRoundTrip) {
  auto dir = TempDir::Create("serde_test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("data.bin");
  std::string payload(100000, 'x');
  payload[5] = '\0';  // binary-safe
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  auto size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);
}

TEST(SerdeFileTest, MissingFileErrors) {
  std::string back;
  EXPECT_EQ(ReadFileToString("/nonexistent/nowhere.bin", &back).code(),
            StatusCode::kIOError);
  EXPECT_FALSE(FileSizeBytes("/nonexistent/nowhere.bin").ok());
}

TEST(SerdeFileTest, RemoveIfExists) {
  auto dir = TempDir::Create("serde_test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("x");
  ASSERT_TRUE(WriteStringToFile(path, "1").ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());  // second time: no error
}

}  // namespace
}  // namespace hopdb
