// PathReconstructor: every reconstructed path must be a real path in the
// graph whose length equals the exact distance, across directed /
// undirected / weighted / disconnected graphs.

#include <gtest/gtest.h>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "hopdb.h"
#include "labeling/builder.h"
#include "query/path.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

struct Fixture {
  CsrGraph graph;  // rank-relabeled
  TwoHopIndex index;
};

Fixture BuildFixture(EdgeList edges) {
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();
  auto built = BuildHopLabeling(*ranked);
  built.status().CheckOK();
  return Fixture{std::move(*ranked), std::move(built->index)};
}

/// Checks reconstruction for every (s, t) pair of `fix`.
void CheckAllPairs(const Fixture& fix) {
  const CsrGraph& g = fix.graph;
  PathReconstructor recon(g, fix.index);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const std::vector<Distance> truth = ExactDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      auto path = recon.ShortestPath(s, t);
      if (truth[t] == kInfDistance) {
        ASSERT_FALSE(path.ok()) << s << "->" << t;
        ASSERT_TRUE(path.status().IsNotFound());
        ASSERT_EQ(recon.FirstHop(s, t), kInvalidVertex);
        ASSERT_EQ(recon.MeetingPivot(s, t), kInvalidVertex);
        continue;
      }
      ASSERT_TRUE(path.ok()) << s << "->" << t << ": "
                             << path.status().ToString();
      ASSERT_EQ(path->front(), s);
      ASSERT_EQ(path->back(), t);
      ASSERT_EQ(PathLength(g, *path), truth[t]) << s << "->" << t;
      if (s == t) {
        ASSERT_EQ(path->size(), 1u);
        ASSERT_EQ(recon.FirstHop(s, t), kInvalidVertex);
        ASSERT_EQ(recon.MeetingPivot(s, t), s);
      } else {
        ASSERT_EQ(recon.FirstHop(s, t), (*path)[1]);
        // The meeting pivot certifies the distance through itself.
        const VertexId pivot = recon.MeetingPivot(s, t);
        ASSERT_NE(pivot, kInvalidVertex);
        ASSERT_EQ(SaturatingAdd(fix.index.Query(s, pivot),
                                fix.index.Query(pivot, t)),
                  truth[t])
            << s << "->" << t << " pivot " << pivot;
      }
    }
  }
}

TEST(PathReconstructorTest, PaperExampleGraph) {
  CheckAllPairs(BuildFixture(PaperExampleGraph()));
}

TEST(PathReconstructorTest, RoadGraph) {
  CheckAllPairs(BuildFixture(RoadGraphGR()));
}

TEST(PathReconstructorTest, StarGraph) {
  CheckAllPairs(BuildFixture(StarGraphGS()));
}

TEST(PathReconstructorTest, GridGraph) {
  CheckAllPairs(BuildFixture(GridGraph(5, 6)));
}

TEST(PathReconstructorTest, DisconnectedPairsAreNotFound) {
  Fixture fix = BuildFixture(TwoTriangles());
  CheckAllPairs(fix);
}

TEST(PathReconstructorTest, OutOfRangeVertexIsInvalidArgument) {
  Fixture fix = BuildFixture(PathGraph(4));
  PathReconstructor recon(fix.graph, fix.index);
  auto r = recon.ShortestPath(0, 99);
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(recon.FirstHop(99, 0), kInvalidVertex);
  ASSERT_EQ(recon.MeetingPivot(0, 99), kInvalidVertex);
}

struct PathCase {
  std::string name;
  bool directed;
  bool weighted;
  uint64_t seed;
};

std::string PathCaseName(const ::testing::TestParamInfo<PathCase>& info) {
  return info.param.name + (info.param.directed ? "_dir" : "_und") +
         (info.param.weighted ? "_wgt" : "_unw") + "_s" +
         std::to_string(info.param.seed);
}

class PathSweepTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathSweepTest, ReconstructionMatchesGroundTruth) {
  const PathCase& c = GetParam();
  EdgeList edges;
  if (c.name == "glp") {
    GlpOptions glp;
    glp.num_vertices = 120;
    glp.seed = c.seed;
    edges = c.directed ? GenerateDirectedGlp(glp).ValueOrDie()
                       : GenerateGlp(glp).ValueOrDie();
  } else {
    ErOptions er;
    er.num_vertices = 90;
    er.num_edges = 150;  // sparse: disconnected pieces exercise NotFound
    er.directed = c.directed;
    er.seed = c.seed;
    edges = GenerateErdosRenyi(er).ValueOrDie();
  }
  if (c.weighted) {
    AssignUniformWeights(&edges, 1, 9, DeriveSeed(c.seed, 5));
  }
  CheckAllPairs(BuildFixture(std::move(edges)));
}

INSTANTIATE_TEST_SUITE_P(
    PathSweep, PathSweepTest,
    ::testing::Values(PathCase{"glp", false, false, 1},
                      PathCase{"glp", true, false, 2},
                      PathCase{"glp", false, true, 3},
                      PathCase{"glp", true, true, 4},
                      PathCase{"er", false, false, 5},
                      PathCase{"er", true, false, 6},
                      PathCase{"er", true, true, 7}),
    PathCaseName);

// --- facade-level querier (original vertex ids) ---

TEST(HopDbPathQuerierTest, SpeaksOriginalIds) {
  GlpOptions glp;
  glp.num_vertices = 100;
  glp.seed = 71;
  EdgeList edges = GenerateDirectedGlp(glp).ValueOrDie();
  auto graph = CsrGraph::FromEdgeList(edges);
  graph.status().CheckOK();
  auto index = HopDbIndex::Build(*graph);
  index.status().CheckOK();
  auto querier = HopDbPathQuerier::Create(*index, *graph);
  ASSERT_TRUE(querier.ok());

  for (VertexId s = 0; s < graph->num_vertices(); s += 7) {
    const std::vector<Distance> truth = ExactDistances(*graph, s);
    for (VertexId t = 0; t < graph->num_vertices(); t += 5) {
      auto path = querier->ShortestPath(s, t);
      if (truth[t] == kInfDistance) {
        ASSERT_FALSE(path.ok());
        ASSERT_EQ(querier->FirstHop(s, t), kInvalidVertex);
        continue;
      }
      ASSERT_TRUE(path.ok());
      ASSERT_EQ(path->front(), s);
      ASSERT_EQ(path->back(), t);
      // The path is a real path in the ORIGINAL graph with exact length.
      ASSERT_EQ(PathLength(*graph, *path), truth[t]) << s << "->" << t;
      if (s != t) {
        ASSERT_EQ(querier->FirstHop(s, t), (*path)[1]);
      }
    }
  }
}

TEST(HopDbPathQuerierTest, RejectsMismatchedGraph) {
  auto small = CsrGraph::FromEdgeList(PathGraph(4));
  small.status().CheckOK();
  auto big = CsrGraph::FromEdgeList(PathGraph(9));
  big.status().CheckOK();
  auto index = HopDbIndex::Build(*small);
  index.status().CheckOK();
  auto querier = HopDbPathQuerier::Create(*index, *big);
  ASSERT_FALSE(querier.ok());
  EXPECT_EQ(querier.status().code(), StatusCode::kInvalidArgument);
}

TEST(PathLengthTest, RejectsNonPaths) {
  auto g = CsrGraph::FromEdgeList(PathGraph(4));
  g.status().CheckOK();
  ASSERT_EQ(PathLength(*g, std::vector<VertexId>{}), kInfDistance);
  ASSERT_EQ(PathLength(*g, std::vector<VertexId>{0}), 0u);
  ASSERT_EQ(PathLength(*g, std::vector<VertexId>{0, 1, 2}), 2u);
  // 0-2 is not an arc of the path graph.
  ASSERT_EQ(PathLength(*g, std::vector<VertexId>{0, 2}), kInfDistance);
}

}  // namespace
}  // namespace hopdb
