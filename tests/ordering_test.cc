// Ordering heuristics (Section 7's general-graph pathway): every strategy
// must yield a valid permutation and a correct index under any of them;
// structure-aware strategies must rank obviously-central vertices first.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ordering.h"
#include "graph/ranking.h"
#include "eval/verify.h"
#include "hopdb.h"
#include "labeling/builder.h"
#include "util/random.h"

namespace hopdb {
namespace {

const OrderStrategy kAllStrategies[] = {
    OrderStrategy::kDegree,          OrderStrategy::kInOutProduct,
    OrderStrategy::kNeighborhoodDegree, OrderStrategy::kDegeneracy,
    OrderStrategy::kSampledBetweenness, OrderStrategy::kSeparator,
    OrderStrategy::kRandom,
};

bool IsPermutation(const std::vector<VertexId>& order, VertexId n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (VertexId v : order) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

TEST(OrderingTest, EveryStrategyYieldsAPermutation) {
  GlpOptions glp;
  glp.num_vertices = 150;
  glp.seed = 9;
  auto g = CsrGraph::FromEdgeList(GenerateGlp(glp).ValueOrDie());
  g.status().CheckOK();
  for (OrderStrategy s : kAllStrategies) {
    auto order = ComputeOrder(*g, s);
    ASSERT_TRUE(order.ok()) << OrderStrategyName(s);
    EXPECT_TRUE(IsPermutation(*order, g->num_vertices()))
        << OrderStrategyName(s);
  }
}

TEST(OrderingTest, DeterministicForFixedSeed) {
  ErOptions er;
  er.num_vertices = 80;
  er.num_edges = 200;
  er.seed = 3;
  auto g = CsrGraph::FromEdgeList(GenerateErdosRenyi(er).ValueOrDie());
  g.status().CheckOK();
  for (OrderStrategy s : kAllStrategies) {
    auto a = ComputeOrder(*g, s);
    auto b = ComputeOrder(*g, s);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << OrderStrategyName(s);
  }
}

TEST(OrderingTest, BetweennessRanksStarCenterFirst) {
  auto g = CsrGraph::FromEdgeList(StarGraph(12));
  g.status().CheckOK();
  auto order =
      ComputeOrder(*g, OrderStrategy::kSampledBetweenness).ValueOrDie();
  EXPECT_EQ(order[0], 0u);  // the center carries all pairwise paths
}

TEST(OrderingTest, BetweennessPrefersPathMiddleOverEndpoints) {
  auto g = CsrGraph::FromEdgeList(PathGraph(9));
  g.status().CheckOK();
  OrderOptions opts;
  opts.betweenness_samples = 9;  // exact: every source sampled
  const std::vector<double> bc =
      SampledBetweenness(*g, opts.betweenness_samples, opts.seed);
  EXPECT_GT(bc[4], bc[0]);
  EXPECT_GT(bc[4], bc[8]);
  EXPECT_GT(bc[4], bc[1]);
}

TEST(OrderingTest, BetweennessZeroSamplesIsInvalidArgument) {
  auto g = CsrGraph::FromEdgeList(PathGraph(4));
  g.status().CheckOK();
  OrderOptions opts;
  opts.betweenness_samples = 0;
  auto r = ComputeOrder(*g, OrderStrategy::kSampledBetweenness, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(OrderingTest, DegeneracyPeelsPendantPathBeforeClique) {
  // K5 (vertices 0..4) with a pendant path 4-5-6-7: the path peels first
  // (degree 1), the clique core last.
  EdgeList edges = CompleteGraph(5);
  edges.Add(4, 5);
  edges.Add(5, 6);
  edges.Add(6, 7);
  edges.Normalize();
  auto g = CsrGraph::FromEdgeList(edges);
  g.status().CheckOK();

  const std::vector<VertexId> peel = DegeneracyPeelOrder(*g);
  ASSERT_EQ(peel.size(), 8u);
  // 7, 6, 5 peel before any clique vertex.
  std::vector<size_t> pos(8);
  for (size_t i = 0; i < peel.size(); ++i) pos[peel[i]] = i;
  for (VertexId path_v : {7u, 6u, 5u}) {
    for (VertexId clique_v : {0u, 1u, 2u, 3u, 4u}) {
      EXPECT_LT(pos[path_v], pos[clique_v])
          << "path vertex " << path_v << " vs clique " << clique_v;
    }
  }
  // ComputeOrder(kDegeneracy) is the reverse: clique core ranks highest.
  auto order = ComputeOrder(*g, OrderStrategy::kDegeneracy).ValueOrDie();
  EXPECT_LT(order[0], 5u);
}

TEST(OrderingTest, NeighborhoodDegreeSeparatesEqualDegreeHubs) {
  // Two stars of equal degree joined by their centers through a bridge;
  // center 0's leaves are themselves connected (higher neighbor degrees).
  EdgeList edges(10, false);
  edges.Add(0, 2);
  edges.Add(0, 3);
  edges.Add(0, 4);
  edges.Add(2, 3);  // raises the neighbor-degree sum of 0's ball
  edges.Add(1, 5);
  edges.Add(1, 6);
  edges.Add(1, 7);
  edges.Add(0, 1);
  edges.Normalize();
  auto g = CsrGraph::FromEdgeList(edges);
  g.status().CheckOK();
  ASSERT_EQ(g->Degree(0), g->Degree(1));
  auto order =
      ComputeOrder(*g, OrderStrategy::kNeighborhoodDegree).ValueOrDie();
  // 0 must precede 1: same degree, richer neighborhood.
  const size_t pos0 = std::find(order.begin(), order.end(), 0u) -
                      order.begin();
  const size_t pos1 = std::find(order.begin(), order.end(), 1u) -
                      order.begin();
  EXPECT_LT(pos0, pos1);
}

TEST(OrderingTest, SeparatorLevelsCutGridsThin) {
  // A 16x16 grid: the top-level separator should be a thin layer (around
  // one grid side, not a constant fraction of all vertices), and levels
  // should span several recursion depths.
  auto g = CsrGraph::FromEdgeList(GridGraph(16, 16));
  g.status().CheckOK();
  const std::vector<uint32_t> levels = SeparatorLevels(*g);
  ASSERT_EQ(levels.size(), 256u);
  size_t top = 0;
  uint32_t max_level = 0;
  for (const uint32_t l : levels) {
    if (l == 0) ++top;
    max_level = std::max(max_level, l);
  }
  EXPECT_GT(top, 0u);
  EXPECT_LE(top, 48u);      // ~one diagonal layer, not half the grid
  EXPECT_GE(max_level, 3u);  // genuinely recursive
}

TEST(OrderingTest, SeparatorOrderCompletesOnGridWhereDegreeExplodes) {
  // Section 7's hard case: on a grid, degree order blows the candidate
  // cap while the separator order builds comfortably.
  auto g = CsrGraph::FromEdgeList(GridGraph(28, 28));
  g.status().CheckOK();
  BuildOptions build;
  build.max_candidates_per_iteration = 2'000'000;

  auto build_with = [&](OrderStrategy s) {
    auto order = ComputeOrder(*g, s).ValueOrDie();
    auto ranked =
        RelabelByRank(*g, RankingFromOrder(std::move(order)));
    ranked.status().CheckOK();
    return BuildHopLabeling(*ranked, build);
  };
  auto separator = build_with(OrderStrategy::kSeparator);
  EXPECT_TRUE(separator.ok()) << separator.status().ToString();
  auto degree = build_with(OrderStrategy::kDegree);
  EXPECT_FALSE(degree.ok());
  EXPECT_TRUE(degree.status().IsResourceExhausted());
}

/// The paper's Section 7 claim: the algorithms are correct under ANY total
/// ranking. Build with every strategy and verify exactness end-to-end.
class OrderingCorrectnessTest
    : public ::testing::TestWithParam<OrderStrategy> {};

TEST_P(OrderingCorrectnessTest, IndexIsExactUnderCustomOrder) {
  GlpOptions glp;
  glp.num_vertices = 130;
  glp.seed = 17;
  EdgeList edges = GenerateDirectedGlp(glp).ValueOrDie();
  auto g = CsrGraph::FromEdgeList(edges);
  g.status().CheckOK();

  auto order = ComputeOrder(*g, GetParam());
  ASSERT_TRUE(order.ok());
  HopDbOptions options;
  options.ranking = HopDbOptions::Ranking::kCustom;
  options.custom_order = *order;
  auto index = HopDbIndex::Build(*g, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  VerifyOptions verify;
  verify.sample_sources = 8;
  Status st = VerifyExactDistances(
      *g, [&](VertexId s, VertexId t) { return index->Query(s, t); },
      verify);
  EXPECT_TRUE(st.ok()) << OrderStrategyName(GetParam()) << ": "
                       << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, OrderingCorrectnessTest,
    ::testing::ValuesIn(kAllStrategies),
    [](const ::testing::TestParamInfo<OrderStrategy>& param_info) {
      std::string name = OrderStrategyName(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(OrderingQualityTest, HubOrdersBeatRandomOnScaleFreeGraphs) {
  GlpOptions glp;
  glp.num_vertices = 400;
  glp.seed = 29;
  EdgeList edges = GenerateGlp(glp).ValueOrDie();
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();

  auto label_entries = [&](OrderStrategy s) -> uint64_t {
    auto order = ComputeOrder(*base, s).ValueOrDie();
    auto ranked =
        RelabelByRank(*base, RankingFromOrder(std::move(order)));
    ranked.status().CheckOK();
    auto built = BuildHopLabeling(*ranked);
    built.status().CheckOK();
    return built->index.TotalEntries();
  };

  const uint64_t degree = label_entries(OrderStrategy::kDegree);
  const uint64_t random = label_entries(OrderStrategy::kRandom);
  // Section 2's whole premise: degree ordering exploits hubs. Random
  // ordering must cost strictly more label entries on a scale-free graph.
  EXPECT_LT(degree, random);
}

}  // namespace
}  // namespace hopdb
