// Fixture tests pinning the implementation to the paper's own worked
// examples: the Figure 3 graph with its Figure 5 labeling (Example 1),
// the pruning of (2->1,2) (Example 2), Hop-Stepping's deferral of
// (4->2,4) (Example 3), and the hand-made 2-hop covers of Tables 3/4.

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/verify.h"
#include "gen/small_graphs.h"
#include "labeling/builder.h"
#include "search/bfs.h"

namespace hopdb {
namespace {

LabelVector Sorted(std::vector<LabelEntry> v) {
  std::sort(v.begin(), v.end(), [](const LabelEntry& a, const LabelEntry& b) {
    return a.pivot < b.pivot;
  });
  return v;
}

void ExpectLabel(std::span<const LabelEntry> got,
                 std::vector<LabelEntry> want, const std::string& what) {
  LabelVector w = Sorted(std::move(want));
  ASSERT_EQ(got.size(), w.size()) << what;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(got[i].pivot, w[i].pivot) << what << " entry " << i;
    EXPECT_EQ(got[i].dist, w[i].dist) << what << " entry " << i;
  }
}

// --- Example 1 / Figure 5: Hop-Doubling WITHOUT pruning contains every
// label entry the figure prints, at the printed distance. (The arXiv
// rendering of Figure 5 drops some entries — e.g. Lout(7) must also hold
// (0,2) for dist(7,0)=2 to be answerable at all, as objective [O1]
// demands for the trough path 7->2->0 — so this is a superset check; the
// prose-listed generation events of Example 1 are asserted exactly.)
TEST(PaperExampleTest, Figure5LabelsWithoutPruning) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHopDoubling;
  opts.prune = false;
  auto out = BuildHopLabeling(*g, opts);
  ASSERT_TRUE(out.ok());
  const TwoHopIndex& idx = out->index;

  auto expect_contains = [&](std::span<const LabelEntry> label,
                             std::vector<LabelEntry> want,
                             const std::string& what) {
    for (const LabelEntry& e : want) {
      EXPECT_EQ(LookupPivot(label, e.pivot), e.dist)
          << what << " must contain (" << e.pivot << ", " << e.dist << ")";
    }
  };
  expect_contains(idx.InLabel(1), {{0, 1}}, "Lin(1)");
  expect_contains(idx.InLabel(3), {{2, 1}}, "Lin(3)");
  expect_contains(idx.InLabel(5), {{4, 1}}, "Lin(5)");
  expect_contains(idx.InLabel(6), {{0, 1}, {2, 1}}, "Lin(6)");
  expect_contains(idx.InLabel(7), {{3, 1}, {2, 2}}, "Lin(7)");
  expect_contains(idx.OutLabel(1), {{0, 1}}, "Lout(1)");
  expect_contains(idx.OutLabel(2), {{0, 1}, {1, 2}}, "Lout(2)");
  expect_contains(idx.OutLabel(3), {{1, 1}, {2, 2}, {0, 2}}, "Lout(3)");
  expect_contains(idx.OutLabel(4), {{0, 1}, {1, 1}, {3, 2}, {2, 4}},
                  "Lout(4)");
  expect_contains(idx.OutLabel(5), {{3, 1}, {1, 2}, {2, 3}, {0, 3}},
                  "Lout(5)");
  expect_contains(idx.OutLabel(7), {{2, 1}}, "Lout(7)");

  // The top-ranked vertex never holds non-trivial labels.
  ExpectLabel(idx.InLabel(0), {}, "Lin(0)");
  ExpectLabel(idx.OutLabel(0), {}, "Lout(0)");
  // Objective [O1] entries the figure's rendering lost: 7->2->0 and
  // 6 has no outgoing edges, so Lout(6) stays empty.
  EXPECT_EQ(LookupPivot(idx.OutLabel(7), 0), 2u);
  ExpectLabel(idx.OutLabel(6), {}, "Lout(6)");
}

// --- Example 1's iteration accounting: "In the third iteration, no new
// label entry is generated and the labeling is completed."
TEST(PaperExampleTest, DoublingFinishesInThreeIterations) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHopDoubling;
  opts.prune = false;
  auto out = BuildHopLabeling(*g, opts);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->stats.num_rule_iterations, 3u);
  EXPECT_GT(out->stats.iterations[0].survivors, 0u);
  EXPECT_GT(out->stats.iterations[1].survivors, 0u);
  EXPECT_EQ(out->stats.iterations[2].survivors, 0u);
}

// --- Example 2: with pruning, (2 -> 1, 2) is pruned by (2 -> 0, 1) and
// (0 -> 1, 1).
TEST(PaperExampleTest, PruningRemovesDominatedEntry) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHopDoubling;
  opts.prune = true;
  auto out = BuildHopLabeling(*g, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(LookupPivot(out->index.OutLabel(2), 1), kInfDistance)
      << "(2->1,2) must be pruned (Example 2)";
  // Queries remain exact.
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
  // And the pruned index is no larger than the unpruned one.
  BuildOptions noprune = opts;
  noprune.prune = false;
  auto full = BuildHopLabeling(*g, noprune);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(out->index.TotalEntries(), full->index.TotalEntries());
}

// --- Example 3: under Hop-Stepping, (4 -> 2, 4) appears only at
// iteration 3 (from (4->5,1) + (5->2,3)), not at iteration 2.
TEST(PaperExampleTest, SteppingGeneratesLongEntryAtIterationThree) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions opts;
  opts.mode = BuildMode::kHopStepping;
  opts.prune = false;
  auto out = BuildHopLabeling(*g, opts);
  ASSERT_TRUE(out.ok());
  // The entry exists in the final labels with distance 4...
  EXPECT_EQ(LookupPivot(out->index.OutLabel(4), 2), 4u);
  // ...and stepping needs one more productive iteration than doubling:
  // paths of 3 hops complete at iteration 3 (Lemma 5), so the build runs
  // 4 rule iterations (the last one generating nothing).
  ASSERT_EQ(out->stats.num_rule_iterations, 4u);
  EXPECT_GT(out->stats.iterations[2].survivors, 0u);
  EXPECT_EQ(out->stats.iterations[3].survivors, 0u);
}

// --- Stepping + pruning and doubling + pruning agree on the final index
// for the paper graph.
TEST(PaperExampleTest, SteppingAndDoublingAgree) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  BuildOptions a, b;
  a.mode = BuildMode::kHopStepping;
  b.mode = BuildMode::kHopDoubling;
  auto ia = BuildHopLabeling(*g, a);
  auto ib = BuildHopLabeling(*g, b);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (VertexId v = 0; v < 8; ++v) {
    ExpectLabel(ia->index.OutLabel(v),
                LabelVector(ib->index.OutLabel(v).begin(),
                            ib->index.OutLabel(v).end()),
                "Lout(" + std::to_string(v) + ")");
    ExpectLabel(ia->index.InLabel(v),
                LabelVector(ib->index.InLabel(v).begin(),
                            ib->index.InLabel(v).end()),
                "Lin(" + std::to_string(v) + ")");
  }
}

// --- Table 1: the paper's first (larger) minimal cover for GR answers
// every query exactly.
TEST(PaperExampleTest, Table1RoadCoverIsExact) {
  auto g = CsrGraph::FromEdgeList(RoadGraphGR());
  ASSERT_TRUE(g.ok());
  std::vector<LabelVector> labels(5);
  labels[0] = {{1, 1}, {2, 2}, {3, 1}, {4, 1}};  // L(a)
  labels[1] = {{2, 1}, {3, 2}, {4, 2}};          // L(b)
  labels[2] = {{4, 3}};                          // L(c)
  labels[3] = {{2, 3}};                          // L(d)
  labels[4] = {{3, 2}};                          // L(e)
  TwoHopIndex idx(std::move(labels), {}, /*directed=*/false);
  ASSERT_TRUE(VerifyExactDistances(
                  *g, [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

// --- Tables 3 and 4: the paper's hand-made small covers answer every
// query exactly (validates the query semantics the paper assumes).
TEST(PaperExampleTest, Table3RoadCoverIsExact) {
  auto g = CsrGraph::FromEdgeList(RoadGraphGR());
  ASSERT_TRUE(g.ok());
  std::vector<LabelVector> labels(5);
  labels[1] = {{0, 1}};          // L(b) = {(a,1)}
  labels[2] = {{0, 2}, {1, 1}};  // L(c) = {(a,2),(b,1)}
  labels[3] = {{0, 1}};          // L(d) = {(a,1)}
  labels[4] = {{0, 1}};          // L(e) = {(a,1)}
  TwoHopIndex idx(std::move(labels), {}, /*directed=*/false);
  ASSERT_TRUE(VerifyExactDistances(
                  *g, [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

TEST(PaperExampleTest, Table4StarCoverIsExact) {
  auto g = CsrGraph::FromEdgeList(StarGraphGS());
  ASSERT_TRUE(g.ok());
  std::vector<LabelVector> labels(6);
  for (VertexId v = 1; v <= 5; ++v) labels[v] = {{0, 1}};
  TwoHopIndex idx(std::move(labels), {}, /*directed=*/false);
  ASSERT_TRUE(VerifyExactDistances(
                  *g, [&](VertexId s, VertexId t) { return idx.Query(s, t); })
                  .ok());
}

// --- The canonical index for the star graph under degree ranking IS the
// Table 4 cover (one entry per leaf).
TEST(PaperExampleTest, StarGraphYieldsHubLabeling) {
  auto g = CsrGraph::FromEdgeList(StarGraphGS());
  ASSERT_TRUE(g.ok());
  auto out = BuildHopLabeling(*g, BuildOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.TotalEntries(), 5u);
  for (VertexId v = 1; v <= 5; ++v) {
    ExpectLabel(out->index.OutLabel(v), {{0, 1}},
                "L(" + std::to_string(v) + ")");
  }
}

}  // namespace
}  // namespace hopdb
