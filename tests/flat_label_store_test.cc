// FlatLabelStore: builder→flat→serde→reload round trips (raw and
// delta-encoded pivot streams), corruption detection, degenerate inputs,
// and the TwoHopIndex flat-mirror lifecycle (eager build, invalidation on
// mutable access, rebuild).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"
#include "labeling/flat_label_store.h"
#include "labeling/two_hop_index.h"
#include "util/random.h"
#include "util/serde.h"

namespace hopdb {
namespace {

LabelVector RandomLabel(Rng* rng, VertexId pivot_space, size_t max_len) {
  std::map<VertexId, Distance> entries;
  const size_t len = rng->Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    entries.emplace(static_cast<VertexId>(rng->Below(pivot_space)),
                    static_cast<Distance>(rng->Uniform(1, 200)));
  }
  LabelVector out;
  for (auto [p, d] : entries) out.push_back({p, d});
  return out;
}

void ExpectStoresEqual(const FlatLabelStore& a, const FlatLabelStore& b) {
  ASSERT_TRUE(a.built());
  ASSERT_TRUE(b.built());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.directed(), b.directed());
  ASSERT_EQ(a.TotalEntries(), b.TotalEntries());
  auto check_view = [](FlatLabelStore::View va, FlatLabelStore::View vb,
                       VertexId v, const char* side) {
    ASSERT_EQ(va.size, vb.size) << side << " label of " << v;
    for (uint32_t i = 0; i < va.size; ++i) {
      ASSERT_EQ(va.pivots[i], vb.pivots[i]) << side << " label of " << v;
      ASSERT_EQ(va.dists[i], vb.dists[i]) << side << " label of " << v;
    }
  };
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    check_view(a.Out(v), b.Out(v), v, "out");
    check_view(a.In(v), b.In(v), v, "in");
  }
}

void ExpectMatchesVectors(const FlatLabelStore& store,
                          const std::vector<LabelVector>& out,
                          const std::vector<LabelVector>& in) {
  ASSERT_EQ(store.num_vertices(), out.size());
  for (VertexId v = 0; v < store.num_vertices(); ++v) {
    const FlatLabelStore::View view = store.Out(v);
    ASSERT_EQ(view.size, out[v].size()) << "out label of " << v;
    for (uint32_t i = 0; i < view.size; ++i) {
      ASSERT_EQ(view.pivots[i], out[v][i].pivot);
      ASSERT_EQ(view.dists[i], out[v][i].dist);
    }
    const std::vector<LabelVector>& in_side = store.directed() ? in : out;
    const FlatLabelStore::View iview = store.In(v);
    ASSERT_EQ(iview.size, in_side[v].size()) << "in label of " << v;
    for (uint32_t i = 0; i < iview.size; ++i) {
      ASSERT_EQ(iview.pivots[i], in_side[v][i].pivot);
      ASSERT_EQ(iview.dists[i], in_side[v][i].dist);
    }
  }
}

std::vector<LabelVector> RandomLabels(Rng* rng, VertexId nv, size_t max_len) {
  std::vector<LabelVector> labels(nv);
  for (VertexId v = 0; v < nv; ++v) {
    labels[v] = RandomLabel(rng, nv, max_len);
  }
  return labels;
}

TEST(FlatLabelStoreTest, BuildMatchesVectors) {
  Rng rng(11);
  const auto out = RandomLabels(&rng, 50, 16);
  ExpectMatchesVectors(FlatLabelStore::Build(out, {}, false), out, {});
  const auto in = RandomLabels(&rng, 50, 16);
  ExpectMatchesVectors(FlatLabelStore::Build(out, in, true), out, in);
}

TEST(FlatLabelStoreTest, SerdeRoundTripRawAndDelta) {
  Rng rng(12);
  for (const bool directed : {false, true}) {
    const auto out = RandomLabels(&rng, 60, 12);
    const auto in = directed ? RandomLabels(&rng, 60, 12)
                             : std::vector<LabelVector>{};
    const FlatLabelStore store = FlatLabelStore::Build(out, in, directed);
    for (const bool delta : {false, true}) {
      std::string buf;
      store.AppendTo(&buf, delta);
      ByteReader reader(buf);
      auto parsed = FlatLabelStore::Parse(&reader);
      ASSERT_TRUE(parsed.ok()) << parsed.status();
      EXPECT_EQ(reader.remaining(), 0u);
      ExpectStoresEqual(store, *parsed);
    }
  }
}

TEST(FlatLabelStoreTest, DeltaEncodingIsSmallerOnSortedLabels) {
  // Scale-free-ish labels: pivots concentrated near 0.
  Rng rng(13);
  std::vector<LabelVector> out(200);
  for (auto& l : out) l = RandomLabel(&rng, 40, 24);
  const FlatLabelStore store = FlatLabelStore::Build(out, {}, false);
  std::string raw, delta;
  store.AppendTo(&raw, false);
  store.AppendTo(&delta, true);
  EXPECT_LT(delta.size(), raw.size());
}

TEST(FlatLabelStoreTest, FileRoundTripAndCorruptionDetection) {
  auto dir = TempDir::Create("flat_store_test");
  ASSERT_TRUE(dir.ok()) << dir.status();
  Rng rng(14);
  const auto out = RandomLabels(&rng, 80, 10);
  const FlatLabelStore store = FlatLabelStore::Build(out, {}, false);
  const std::string path = dir->File("labels.hfs");
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = FlatLabelStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStoresEqual(store, *loaded);

  // Flip one payload byte: the checksum must catch it.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  const std::string bad = dir->File("corrupt.hfs");
  ASSERT_TRUE(WriteStringToFile(bad, bytes).ok());
  EXPECT_FALSE(FlatLabelStore::Load(bad).ok());

  // Truncation must fail cleanly too.
  const std::string trunc = dir->File("trunc.hfs");
  ASSERT_TRUE(
      WriteStringToFile(trunc, bytes.substr(0, bytes.size() / 3)).ok());
  EXPECT_FALSE(FlatLabelStore::Load(trunc).ok());
}

TEST(FlatLabelStoreTest, DegenerateStores) {
  // No vertices at all.
  const FlatLabelStore empty = FlatLabelStore::Build({}, {}, false);
  EXPECT_TRUE(empty.built());
  EXPECT_EQ(empty.TotalEntries(), 0u);
  std::string buf;
  empty.AppendTo(&buf, true);
  ByteReader reader(buf);
  auto parsed = FlatLabelStore::Parse(&reader);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_vertices(), 0u);

  // Vertices with all-empty labels.
  const FlatLabelStore blank =
      FlatLabelStore::Build(std::vector<LabelVector>(5), {}, false);
  EXPECT_EQ(blank.TotalEntries(), 0u);
  EXPECT_EQ(blank.Out(3).size, 0u);

  // Default-constructed store is not built.
  EXPECT_FALSE(FlatLabelStore().built());

  // A single one-entry label survives both encodings.
  std::vector<LabelVector> one(2);
  one[1] = {{0, 7}};
  const FlatLabelStore single = FlatLabelStore::Build(one, {}, false);
  for (const bool delta : {false, true}) {
    std::string b;
    single.AppendTo(&b, delta);
    ByteReader r(b);
    auto p = FlatLabelStore::Parse(&r);
    ASSERT_TRUE(p.ok()) << p.status();
    ExpectStoresEqual(single, *p);
  }
}

// Full pipeline: build labels with the real builder over a GLP graph,
// flatten, serialize, reload, and require identical views and identical
// query answers through the HLI1 save/load path as well.
TEST(FlatLabelStoreTest, BuilderToFlatToSerdeToReload) {
  GlpOptions glp;
  glp.num_vertices = 300;
  glp.target_avg_degree = 4;
  glp.seed = 5;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok()) << edges.status();
  auto graph = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto ranked =
      RelabelByRank(*graph, ComputeRanking(*graph, RankingPolicy::kDegree));
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  auto built = BuildHopLabeling(*ranked);
  ASSERT_TRUE(built.ok()) << built.status();
  TwoHopIndex index = std::move(built->index);
  ASSERT_TRUE(index.flat_store().built());

  auto dir = TempDir::Create("flat_store_pipeline");
  ASSERT_TRUE(dir.ok()) << dir.status();

  // Flat serde round trip.
  const std::string flat_path = dir->File("labels.hfs");
  ASSERT_TRUE(index.flat_store().Save(flat_path).ok());
  auto flat = FlatLabelStore::Load(flat_path);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ExpectStoresEqual(index.flat_store(), *flat);

  // HLI1 round trip rebuilds an identical flat mirror.
  const std::string hli_path = dir->File("labels.hli");
  ASSERT_TRUE(index.Save(hli_path).ok());
  auto reloaded = TwoHopIndex::Load(hli_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_TRUE(reloaded->flat_store().built());
  ExpectStoresEqual(index.flat_store(), reloaded->flat_store());

  Rng rng(31);
  for (int q = 0; q < 2000; ++q) {
    const VertexId s = static_cast<VertexId>(rng.Below(index.num_vertices()));
    const VertexId t = static_cast<VertexId>(rng.Below(index.num_vertices()));
    ASSERT_EQ(index.Query(s, t), reloaded->Query(s, t));
  }

  // A corrupted embedded flat section must fail the load, not silently
  // serve a wrong mirror.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(hli_path, &bytes).ok());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x1);  // section checksum
  const std::string bad = dir->File("bad_section.hli");
  ASSERT_TRUE(WriteStringToFile(bad, bytes).ok());
  EXPECT_FALSE(TwoHopIndex::Load(bad).ok());
}

TEST(FlatLabelStoreTest, MutableAccessInvalidatesAndRebuildRestores) {
  Rng rng(15);
  const auto out = RandomLabels(&rng, 40, 8);
  TwoHopIndex index(out, {}, false);
  ASSERT_TRUE(index.flat_store().built());

  // Record some answers, then poke the mutable path.
  std::vector<Distance> before;
  for (VertexId v = 0; v < 40; ++v) before.push_back(index.Query(0, v));

  index.mutable_out();
  EXPECT_FALSE(index.flat_store().built());
  // The vector fallback still answers identically.
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(index.Query(0, v), before[v]);

  index.RebuildFlatStore();
  ASSERT_TRUE(index.flat_store().built());
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(index.Query(0, v), before[v]);
}

}  // namespace
}  // namespace hopdb
