// Hostile-client and overload coverage for the epoll serving core:
// pipelined requests executing concurrently (the completion-driven
// ordering proof), BUSY shedding when the work queue saturates,
// slow-loris partial writers, oversize request lines, bad protocol
// magic, clients vanishing mid-response, and half-closed pipelines.
// These tests run under the sanitizer presets too — several exist
// mainly so TSan/ASan can watch the failure paths.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "hopdb.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/trace.h"
#include "util/string_util.h"

namespace hopdb {
namespace {

// A raw TCP connection with byte-level control — DistanceClient is too
// polite for slow-loris and half-close scenarios.
class RawConn {
 public:
  RawConn() = default;
  ~RawConn() { Close(); }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (stripped). Empty optional-style
  /// return via `ok`: false means EOF or error before a full line.
  bool RecvLine(std::string* line) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads until the peer sends EOF; returns everything received
  /// (including bytes already buffered).
  std::string RecvUntilEof() {
    char chunk[4096];
    while (true) {
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string all = std::move(buffer_);
    buffer_.clear();
    return all;
  }

  /// True once the peer has sent EOF (and no buffered line remains).
  bool AtEof() {
    char chunk[4096];
    while (true) {
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;
    }
  }

  void HalfCloseWrites() { shutdown(fd_, SHUT_WR); }
  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
    buffer_.clear();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

EdgeList TestGraph(VertexId n, uint64_t seed) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = 5.0;
  options.seed = seed;
  return GenerateGlp(options).ValueOrDie();
}

class ServerRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = CsrGraph::FromEdgeList(TestGraph(300, /*seed=*/17)).ValueOrDie();
  }

  void StartServer(ServerOptions options) {
    server_ = DistanceServer::Start(HopDbIndex::Build(graph_).ValueOrDie(),
                                    std::move(options))
                  .ValueOrDie();
  }

  CsrGraph graph_;
  std::unique_ptr<DistanceServer> server_;
};

// The headline regression test for the old reader loop, which blocked
// on each request's future before reading the next: requests pipelined
// on ONE connection must execute concurrently, with only their response
// bytes re-serialized in request order. The first request's hook holds
// its worker hostage until the three requests behind it have been
// dispatched — under the old design that is a deadlock (the later
// requests were never read off the socket), so this test passing at all
// is the proof.
TEST_F(ServerRobustnessTest, PipelinedRequestsExecuteConcurrently) {
  constexpr VertexId kBlockedSrc = 111;
  std::mutex mu;
  std::condition_variable cv;
  int others_dispatched = 0;
  bool overlap_seen = false;

  ServerOptions options;
  options.num_workers = 4;
  options.max_micro_batch = 1;  // one request per worker drain
  options.pre_execute_hook = [&](const Request& request) {
    std::unique_lock<std::mutex> lock(mu);
    if (request.kind == RequestKind::kDist && request.src == kBlockedSrc) {
      overlap_seen = cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return others_dispatched >= 3; });
      return;
    }
    ++others_dispatched;
    cv.notify_all();
  };
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  // The blocked request targets an out-of-range vertex so its response
  // is distinguishable from the three behind it.
  ASSERT_TRUE(
      conn.SendAll("DIST 111 999999\nDIST 5 6\nDIST 7 8\nDIST 9 10\n"));

  std::string line;
  ASSERT_TRUE(conn.RecvLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR ")) << line;  // blocker answered first
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(conn.RecvLine(&line));
    EXPECT_TRUE(StartsWith(line, "OK ")) << line;
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(overlap_seen)
      << "later pipelined requests never executed while the first was "
         "in flight";
}

// Stage timestamps must stay monotonic even when pipelined requests
// overlap on the workers and their responses are buffered in completion
// slots out of execution order: request N+1 can finish executing before
// request N, but every delivered trace still reads
// accepted ≤ parsed ≤ enqueued ≤ dequeued ≤ executed ≤ encoded ≤ written
// because each stamp is taken by the thread that owns that stage.
TEST_F(ServerRobustnessTest, TraceTimestampsMonotonicUnderPipelining) {
  constexpr VertexId kBlockedSrc = 111;
  std::mutex mu;
  std::condition_variable cv;
  int others_dispatched = 0;

  ServerOptions options;
  options.num_workers = 4;
  options.max_micro_batch = 1;
  options.trace_sample_rate = 1.0;
  options.trace_ring_capacity = 16;
  options.pre_execute_hook = [&](const Request& request) {
    std::unique_lock<std::mutex> lock(mu);
    if (request.kind == RequestKind::kDist && request.src == kBlockedSrc) {
      cv.wait_for(lock, std::chrono::seconds(10),
                  [&] { return others_dispatched >= 3; });
      return;
    }
    ++others_dispatched;
    cv.notify_all();
  };
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  ASSERT_TRUE(
      conn.SendAll("DIST 111 999999\nDIST 5 6\nDIST 7 8\nDIST 9 10\n"));
  std::string line;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(conn.RecvLine(&line));
  }

  // Traces are delivered after the response bytes hit the kernel, so
  // the client being done does not mean the ring is full yet.
  std::vector<RequestTrace> traces;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    traces = server_->RecentTraces(16);
    if (traces.size() >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(traces.size(), 4u);
  for (const RequestTrace& trace : traces) {
    SCOPED_TRACE("trace_id=" + std::to_string(trace.trace_id));
    EXPECT_GT(trace.accepted_ns, 0u);
    EXPECT_LE(trace.accepted_ns, trace.parsed_ns);
    EXPECT_LE(trace.parsed_ns, trace.enqueued_ns);
    EXPECT_LE(trace.enqueued_ns, trace.dequeued_ns);
    EXPECT_LE(trace.dequeued_ns, trace.executed_ns);
    EXPECT_LE(trace.executed_ns, trace.encoded_ns);
    EXPECT_LE(trace.encoded_ns, trace.written_ns);
    EXPECT_FALSE(trace.shed);
    EXPECT_FALSE(trace.parse_error);
  }
}

// Saturating the work queue must shed with a distinct, retryable BUSY
// error — never a hang, never a silent close — and the connection must
// remain usable afterwards.
TEST_F(ServerRobustnessTest, OverloadShedsWithBusy) {
  constexpr VertexId kBlockedSrc = 111;
  std::mutex mu;
  std::condition_variable cv;
  bool worker_blocked = false;
  bool release = false;

  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.max_micro_batch = 1;
  options.pre_execute_hook = [&](const Request& request) {
    if (request.kind != RequestKind::kDist || request.src != kBlockedSrc) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu);
    worker_blocked = true;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return release; });
  };
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  ASSERT_TRUE(conn.SendAll("DIST 111 1\n"));
  {
    // Wait until the only worker is provably stuck inside request 1 —
    // from here on the queue's single slot and the shed path are
    // deterministic.
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return worker_blocked; }));
  }
  // Request 2 takes the queue's only slot; 3..8 must shed.
  std::string burst;
  for (int i = 0; i < 7; ++i) burst += "DIST 5 6\n";
  ASSERT_TRUE(conn.SendAll(burst));

  // Shedding happens at enqueue time on the I/O thread, so it completes
  // while the worker is still blocked — but SendAll only hands bytes to
  // the kernel, so wait for the sheds to land before releasing.
  // Releasing early would let the worker drain pushes as they arrive and
  // nothing would shed.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->metrics().shed() < 6 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server_->metrics().shed(), 6u);

  // Responses are ordered, so the BUSY answers for 3..8 are buffered
  // behind the blocked request 1. Release it and read all eight.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  std::string line;
  int ok = 0, busy = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(conn.RecvLine(&line)) << "response " << i;
    if (StartsWith(line, "OK ")) {
      ++ok;
    } else {
      EXPECT_TRUE(StartsWith(line, "ERR BUSY ")) << line;
      ++busy;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(busy, 6);
  EXPECT_EQ(server_->metrics().shed(), 6u);

  // Shedding is per-request, not per-connection: the same socket works.
  // Sent one at a time — with queue_capacity=1 a pipelined pair could
  // legitimately shed the second request before the worker drains the first.
  ASSERT_TRUE(conn.SendAll("PING\n"));
  ASSERT_TRUE(conn.RecvLine(&line));
  EXPECT_EQ(line, "OK pong");
  ASSERT_TRUE(conn.SendAll("STATS\n"));
  ASSERT_TRUE(conn.RecvLine(&line));
  EXPECT_NE(line.find("shed=6"), std::string::npos) << line;
}

// A slow-loris writer dribbling one byte at a time must not stall the
// event loop: a second client on the SAME single I/O thread gets served
// while the loris is mid-line, and the loris still gets its answer.
TEST_F(ServerRobustnessTest, SlowLorisDoesNotStallTheEventLoop) {
  ServerOptions options;
  options.num_workers = 2;
  options.num_io_threads = 1;  // everything below shares one epoll thread
  StartServer(std::move(options));

  RawConn loris;
  ASSERT_TRUE(loris.Connect(server_->port()));
  const std::string request = "DIST 5 20\n";
  // First half, one byte at a time, no terminating newline yet.
  for (size_t i = 0; i + 1 < request.size() / 2; ++i) {
    ASSERT_TRUE(loris.SendAll(request.substr(i, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The loris holds no lock on the I/O thread: a well-behaved client
  // sails through.
  auto client = DistanceClient::Connect("127.0.0.1", server_->port())
                    .ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*client.RoundTrip("PING"), "OK pong");
  }

  // Finish the line; the loris gets a normal answer.
  ASSERT_TRUE(loris.SendAll(request.substr(request.size() / 2 - 1)));
  std::string line;
  ASSERT_TRUE(loris.RecvLine(&line));
  EXPECT_TRUE(StartsWith(line, "OK ")) << line;
}

// A v1 line longer than kMaxLineBytes can never frame a request: the
// server answers with an ordered error and closes the connection.
TEST_F(ServerRobustnessTest, OversizeLineAnsweredThenClosed) {
  ServerOptions options;
  options.num_workers = 1;
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  ASSERT_TRUE(conn.SendAll(std::string(kMaxLineBytes + 2, 'A')));
  std::string line;
  ASSERT_TRUE(conn.RecvLine(&line));
  EXPECT_EQ(line, "ERR request line too long");
  EXPECT_TRUE(conn.AtEof());
}

// A first byte of 0x02 promises the v2 magic; anything else after it is
// unsalvageable and gets the same answer-then-close treatment.
TEST_F(ServerRobustnessTest, BadProtocolMagicAnsweredThenClosed) {
  ServerOptions options;
  options.num_workers = 1;
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  ASSERT_TRUE(conn.SendAll(std::string("\x02XYZ", 4)));
  std::string line;
  ASSERT_TRUE(conn.RecvLine(&line));
  EXPECT_EQ(line, "ERR bad protocol magic");
  EXPECT_TRUE(conn.AtEof());
}

// A malformed v2 frame is fatal (the byte stream has desynchronized),
// but the error is still answered in order before the close.
TEST_F(ServerRobustnessTest, MalformedV2FrameAnsweredThenClosed) {
  ServerOptions options;
  options.num_workers = 1;
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  std::string bytes(kV2Magic, sizeof(kV2Magic));
  Request ping;
  ping.kind = RequestKind::kPing;
  EncodeRequestV2(ping, &bytes);
  bytes[sizeof(kV2Magic)] = 0x7f;  // unknown opcode
  ASSERT_TRUE(conn.SendAll(bytes));

  // The error comes back as one v2 response frame, then EOF.
  const std::string raw = conn.RecvUntilEof();
  size_t consumed = 0;
  WireResponse response;
  std::string error;
  ASSERT_EQ(ParseResponseFrameV2(raw.data(), raw.size(), &consumed, &response,
                                 &error),
            FrameParse::kDone)
      << error;
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(response.status, WireStatus::kErr);
  EXPECT_NE(response.text.find("opcode"), std::string::npos) << response.text;
}

// Clients that vanish mid-response (EPIPE/ECONNRESET on the server's
// send path) must not take the server down or leak the connection.
TEST_F(ServerRobustnessTest, ClientVanishingMidResponseIsHarmless) {
  ServerOptions options;
  options.num_workers = 2;
  StartServer(std::move(options));

  std::string big_batch = "BATCH 9";
  for (VertexId t = 0; t < 200; ++t) {
    big_batch += ' ';
    big_batch += std::to_string(t % 300);
  }
  big_batch += '\n';

  for (int round = 0; round < 8; ++round) {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    std::string burst;
    for (int i = 0; i < 16; ++i) burst += big_batch;
    ASSERT_TRUE(conn.SendAll(burst));
    conn.Close();  // vanish before reading anything
  }

  // The server keeps serving, and the dead connections are reaped.
  auto client = DistanceClient::Connect("127.0.0.1", server_->port())
                    .ValueOrDie();
  EXPECT_EQ(*client.RoundTrip("PING"), "OK pong");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->open_connections() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(server_->open_connections(), 1u);
}

// Half-close pipelining: a client that writes N requests and shuts down
// its write side must still receive all N responses, then EOF.
TEST_F(ServerRobustnessTest, HalfClosedPipelineDrainsAllResponses) {
  ServerOptions options;
  options.num_workers = 2;
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  constexpr int kRequests = 32;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "DIST " + std::to_string(i % 300) + " " +
             std::to_string((i * 7) % 300) + "\n";
  }
  ASSERT_TRUE(conn.SendAll(burst));
  conn.HalfCloseWrites();

  std::string line;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(conn.RecvLine(&line)) << "response " << i;
    EXPECT_TRUE(StartsWith(line, "OK ")) << line;
  }
  EXPECT_TRUE(conn.AtEof());
}

// Backpressure: a client that pipelines far past max_inflight_per_conn
// but never reads must not grow server-side state without bound — the
// server pauses reading instead. Once the client starts draining, every
// request is eventually answered.
TEST_F(ServerRobustnessTest, InflightCapThrottlesButLosesNothing) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_inflight_per_conn = 4;
  options.queue_capacity = 1024;  // shedding is not what's under test
  StartServer(std::move(options));

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  constexpr int kRequests = 256;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += "PING\n";
  ASSERT_TRUE(conn.SendAll(burst));

  std::string line;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(conn.RecvLine(&line)) << "response " << i;
    EXPECT_EQ(line, "OK pong");
  }
}

}  // namespace
}  // namespace hopdb
