#include <gtest/gtest.h>

#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "graph/transform.h"

namespace hopdb {
namespace {

TEST(GlpTest, RespectsVertexCount) {
  GlpOptions opt;
  opt.num_vertices = 5000;
  opt.seed = 1;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_vertices(), 5000u);
  EXPECT_FALSE(edges->directed());
  EXPECT_TRUE(edges->Validate().ok());
}

TEST(GlpTest, Deterministic) {
  GlpOptions opt;
  opt.num_vertices = 2000;
  opt.seed = 99;
  auto a = GenerateGlp(opt);
  auto b = GenerateGlp(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (size_t i = 0; i < a->num_edges(); ++i) {
    EXPECT_EQ(a->edges()[i], b->edges()[i]);
  }
}

TEST(GlpTest, SeedsDiffer) {
  GlpOptions a, b;
  a.num_vertices = b.num_vertices = 2000;
  a.seed = 1;
  b.seed = 2;
  auto ga = GenerateGlp(a);
  auto gb = GenerateGlp(b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_NE(ga->num_edges(), gb->num_edges());
}

TEST(GlpTest, TargetDensityHit) {
  GlpOptions opt;
  opt.num_vertices = 20000;
  opt.target_avg_degree = 10;
  opt.seed = 7;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  double density =
      static_cast<double>(edges->num_edges()) / edges->num_vertices();
  EXPECT_GT(density, 6.0);
  EXPECT_LT(density, 14.0);
}

TEST(GlpTest, ConnectedByConstruction) {
  GlpOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 11;
  auto edges = GenerateGlp(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  uint32_t comps = 0;
  WeaklyConnectedComponents(*g, &comps);
  EXPECT_EQ(comps, 1u);
}

TEST(GlpTest, RejectsBadParameters) {
  GlpOptions opt;
  opt.num_vertices = 5;
  opt.m0 = 10;
  EXPECT_FALSE(GenerateGlp(opt).ok());  // |V| < m0
  opt.num_vertices = 100;
  opt.beta = 1.5;
  EXPECT_FALSE(GenerateGlp(opt).ok());
  opt.beta = 0.5;
  opt.p = 1.0;
  EXPECT_FALSE(GenerateGlp(opt).ok());
  opt.p = 0.45;
  opt.m0 = 1;
  EXPECT_FALSE(GenerateGlp(opt).ok());
}

TEST(GlpTest, DirectedOrientation) {
  GlpOptions opt;
  opt.num_vertices = 3000;
  opt.seed = 13;
  auto edges = GenerateDirectedGlp(opt, /*reciprocal=*/0.5);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->directed());
  auto undirected = GenerateGlp(opt);
  ASSERT_TRUE(undirected.ok());
  // Reciprocity adds extra arcs beyond one per undirected edge.
  EXPECT_GT(edges->num_edges(), undirected->num_edges());
  EXPECT_LT(edges->num_edges(), 2 * undirected->num_edges());
}

TEST(BaTest, GeneratesWithHub) {
  BaOptions opt;
  opt.num_vertices = 3000;
  opt.edges_per_vertex = 2;
  opt.seed = 17;
  auto edges = GenerateBarabasiAlbert(opt);
  ASSERT_TRUE(edges.ok());
  auto g = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MaxDegree(), 30u);  // preferential attachment creates hubs
  EXPECT_TRUE(edges->Validate().ok());
}

TEST(BaTest, RejectsBadParameters) {
  BaOptions opt;
  opt.num_vertices = 2;
  opt.edges_per_vertex = 2;
  EXPECT_FALSE(GenerateBarabasiAlbert(opt).ok());
  opt.edges_per_vertex = 0;
  EXPECT_FALSE(GenerateBarabasiAlbert(opt).ok());
}

TEST(ErTest, ApproximatesRequestedEdges) {
  ErOptions opt;
  opt.num_vertices = 1000;
  opt.num_edges = 5000;
  opt.seed = 19;
  auto edges = GenerateErdosRenyi(opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_GT(edges->num_edges(), 4500u);
  EXPECT_LE(edges->num_edges(), 5000u);
}

TEST(ErTest, DirectedFlag) {
  ErOptions opt;
  opt.num_vertices = 100;
  opt.num_edges = 300;
  opt.directed = true;
  auto edges = GenerateErdosRenyi(opt);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->directed());
}

TEST(SmallGraphsTest, RoadGraphShape) {
  EdgeList g = RoadGraphGR();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  auto csr = CsrGraph::FromEdgeList(g);
  ASSERT_TRUE(csr.ok());
  EXPECT_EQ(csr->Degree(0), 3u);  // a is the hub
}

TEST(SmallGraphsTest, PaperExampleDegreesNonIncreasing) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_vertices(), 8u);
  EXPECT_EQ(g->num_edges(), 13u);
  for (VertexId v = 0; v + 1 < 8; ++v) {
    EXPECT_GE(g->Degree(v), g->Degree(v + 1))
        << "the paper ids vertices by non-increasing degree";
  }
}

TEST(SmallGraphsTest, GridShape) {
  auto g = CsrGraph::FromEdgeList(GridGraph(3, 4));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 12u);
  EXPECT_EQ(g->num_edges(), 17u);  // 3*3 horizontal + 2*4 vertical
  EXPECT_EQ(g->MaxDegree(), 4u);
}

TEST(SmallGraphsTest, CompleteGraph) {
  auto g = CsrGraph::FromEdgeList(CompleteGraph(6));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 15u);
  EXPECT_EQ(g->MaxDegree(), 5u);
}

TEST(WeightsTest, UniformWeightsInRange) {
  EdgeList e = GridGraph(5, 5);
  AssignUniformWeights(&e, 2, 9, 23);
  for (const Edge& edge : e.edges()) {
    EXPECT_GE(edge.weight, 2u);
    EXPECT_LE(edge.weight, 9u);
  }
  EXPECT_TRUE(e.weighted());
}

TEST(WeightsTest, RatingWeightsSkewLow) {
  EdgeList e = CompleteGraph(40);
  AssignRatingWeights(&e, 10, 29);
  uint64_t low = 0, high = 0;
  for (const Edge& edge : e.edges()) {
    EXPECT_GE(edge.weight, 1u);
    EXPECT_LE(edge.weight, 10u);
    (edge.weight <= 3 ? low : high)++;
  }
  EXPECT_GT(low, high);  // P(w) ∝ 1/w concentrates low values
}

}  // namespace
}  // namespace hopdb
