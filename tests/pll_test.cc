#include "baselines/pll.h"

#include <gtest/gtest.h>

#include "eval/verify.h"
#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "labeling/builder.h"

namespace hopdb {
namespace {

Result<CsrGraph> RankedGraph(const EdgeList& edges) {
  HOPDB_ASSIGN_OR_RETURN(CsrGraph g, CsrGraph::FromEdgeList(edges));
  RankMapping m = ComputeRanking(
      g, g.directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  return RelabelByRank(g, m);
}

TEST(PllTest, StarGraphCanonical) {
  auto ranked = RankedGraph(StarGraphGS());
  ASSERT_TRUE(ranked.ok());
  auto out = BuildPll(*ranked);
  ASSERT_TRUE(out.ok());
  // One entry per leaf: the Table 4 cover.
  EXPECT_EQ(out->index.TotalEntries(), 5u);
  EXPECT_TRUE(out->index.Validate(/*ranked=*/true).ok());
}

TEST(PllTest, ExactOnDirectedExample) {
  auto g = CsrGraph::FromEdgeList(PaperExampleGraph());
  ASSERT_TRUE(g.ok());
  auto out = BuildPll(*g);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *g,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
  EXPECT_EQ(out->searches, 16u);  // two per vertex, directed
}

TEST(PllTest, ExactOnWeightedGrid) {
  EdgeList e = GridGraph(6, 6);
  AssignUniformWeights(&e, 1, 9, 13);
  auto ranked = RankedGraph(e);
  ASSERT_TRUE(ranked.ok());
  auto out = BuildPll(*ranked);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(VerifyExactDistances(
                  *ranked,
                  [&](VertexId s, VertexId t) {
                    return out->index.Query(s, t);
                  })
                  .ok());
}

TEST(PllTest, ExactOnDisconnected) {
  auto ranked = RankedGraph(TwoTriangles());
  ASSERT_TRUE(ranked.ok());
  auto out = BuildPll(*ranked);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->index.Query(0, 5), kInfDistance);
}

TEST(PllTest, DeadlineAborts) {
  GlpOptions glp;
  glp.num_vertices = 20000;
  glp.target_avg_degree = 8;
  glp.seed = 3;
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  PllOptions opts;
  opts.time_budget_seconds = 1e-7;
  auto out = BuildPll(*ranked, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded());
}

// PLL and HopDb both build the canonical labeling for the same vertex
// order on unweighted graphs, so their indexes must coincide exactly —
// the strongest possible cross-validation of the iterative rules against
// the pruned-BFS construction.
class PllEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PllEquivalenceTest, MatchesHopDbLabelForLabel) {
  GlpOptions glp;
  glp.num_vertices = 700;
  glp.seed = GetParam();
  auto edges = GenerateGlp(glp);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());

  auto pll = BuildPll(*ranked);
  ASSERT_TRUE(pll.ok());
  auto hop = BuildHopLabeling(*ranked, BuildOptions{});
  ASSERT_TRUE(hop.ok());

  ASSERT_EQ(pll->index.TotalEntries(), hop->index.TotalEntries());
  for (VertexId v = 0; v < ranked->num_vertices(); ++v) {
    auto a = pll->index.OutLabel(v);
    auto b = hop->index.OutLabel(v);
    ASSERT_EQ(a.size(), b.size()) << "label of " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].pivot, b[i].pivot) << "label of " << v;
      EXPECT_EQ(a[i].dist, b[i].dist) << "label of " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PllEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PllTest, DirectedEquivalenceWithHopDb) {
  ErOptions er;
  er.num_vertices = 300;
  er.num_edges = 1200;
  er.directed = true;
  er.seed = 17;
  auto edges = GenerateErdosRenyi(er);
  ASSERT_TRUE(edges.ok());
  auto ranked = RankedGraph(*edges);
  ASSERT_TRUE(ranked.ok());
  auto pll = BuildPll(*ranked);
  ASSERT_TRUE(pll.ok());
  auto hop = BuildHopLabeling(*ranked, BuildOptions{});
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(pll->index.TotalEntries(), hop->index.TotalEntries());
  for (VertexId v = 0; v < ranked->num_vertices(); ++v) {
    auto check = [&](std::span<const LabelEntry> a,
                     std::span<const LabelEntry> b) {
      ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pivot, b[i].pivot);
        EXPECT_EQ(a[i].dist, b[i].dist);
      }
    };
    check(pll->index.OutLabel(v), hop->index.OutLabel(v));
    check(pll->index.InLabel(v), hop->index.InLabel(v));
  }
}

}  // namespace
}  // namespace hopdb
