// HotHubCache: the dense top-k pivot table must answer bit-identically
// to the general merge-join on every kernel, every k, and both label
// backings (heap flat store and mapped HLI2), including the tricky
// cases — hub-covered trivial pivots, labels entirely inside the hub
// prefix, and partial-block suffix starts.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/erdos_renyi.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"
#include "labeling/hot_hub.h"
#include "labeling/mapped_index.h"
#include "labeling/query_kernel.h"
#include "util/random.h"

namespace hopdb {
namespace {

struct Fixture {
  TwoHopIndex index;
  RankMapping mapping;
};

Fixture BuildFixture(EdgeList edges) {
  auto base = CsrGraph::FromEdgeList(edges);
  base.status().CheckOK();
  RankMapping mapping = ComputeRanking(
      *base, base->directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*base, mapping);
  ranked.status().CheckOK();
  auto built = BuildHopLabeling(*ranked);
  built.status().CheckOK();
  return Fixture{std::move(built->index), std::move(mapping)};
}

EdgeList MakeGraph(bool directed, bool weighted, uint64_t seed) {
  GlpOptions glp;
  glp.num_vertices = 180;
  glp.seed = seed;
  EdgeList edges = directed ? GenerateDirectedGlp(glp).ValueOrDie()
                            : GenerateGlp(glp).ValueOrDie();
  if (weighted) AssignUniformWeights(&edges, 1, 150, DeriveSeed(seed, 5));
  return edges;
}

/// Reference answer over the same view the hub queries: the general
/// QueryFlatHalves path with the given kernel.
Distance Reference(const LabelSetView& view, VertexId s, VertexId t,
                   const QueryKernel& kernel) {
  return QueryFlatHalves(view.Out(s), view.In(t), s, t, kernel);
}

void ExpectIdentityOnView(const LabelSetView& view, uint64_t seed) {
  const VertexId n = view.num_vertices;
  // k sweep: disabled, tiny, one block, the serving default, beyond n.
  for (const uint32_t k :
       {uint32_t{1}, uint32_t{3}, uint32_t{16}, uint32_t{64}, n, n + 100}) {
    const HotHubCache hub = HotHubCache::Build(view, k);
    ASSERT_TRUE(hub.enabled());
    EXPECT_LE(hub.k(), n);
    EXPECT_GT(hub.SizeBytes(), 0u);
    for (const QueryKernel* kernel : SupportedQueryKernels()) {
      Rng rng(DeriveSeed(seed, k));
      for (int i = 0; i < 1500; ++i) {
        const VertexId s = rng.Below(n);
        const VertexId t = rng.Below(n);
        ASSERT_EQ(hub.Query(view, s, t, *kernel),
                  Reference(view, s, t, *kernel))
            << kernel->name << " k=" << k << " " << s << "->" << t;
      }
      // Every pair touching the hub pivots themselves (s or t < k is
      // where trivial pivots hide inside the skipped prefix).
      const VertexId hub_end = std::min<VertexId>(hub.k() + 2, n);
      for (VertexId s = 0; s < hub_end; ++s) {
        for (VertexId t = 0; t < hub_end; ++t) {
          ASSERT_EQ(hub.Query(view, s, t, *kernel),
                    Reference(view, s, t, *kernel))
              << kernel->name << " k=" << k << " " << s << "->" << t;
        }
      }
      // Degenerate endpoints.
      EXPECT_EQ(hub.Query(view, 2, 2, *kernel), 0u);
      EXPECT_EQ(hub.Query(view, n, 0, *kernel), kInfDistance);
      EXPECT_EQ(hub.Query(view, 0, n + 7, *kernel), kInfDistance);
    }
  }
}

TEST(HotHubTest, DisabledCacheAndZeroK) {
  EXPECT_FALSE(HotHubCache().enabled());
  Fixture fix = BuildFixture(MakeGraph(false, false, 11));
  const HotHubCache hub =
      HotHubCache::Build(fix.index.flat_store().view(), 0);
  EXPECT_FALSE(hub.enabled());
  EXPECT_EQ(hub.SizeBytes(), 0u);
}

TEST(HotHubTest, MatchesMergeJoinOnBlockedHeapStoreUndirected) {
  Fixture fix = BuildFixture(MakeGraph(false, false, 21));
  ASSERT_TRUE(fix.index.flat_store().built());
  ExpectIdentityOnView(fix.index.flat_store().view(), 210);
}

TEST(HotHubTest, MatchesMergeJoinOnBlockedHeapStoreDirectedWeighted) {
  Fixture fix = BuildFixture(MakeGraph(true, true, 22));
  ASSERT_TRUE(fix.index.flat_store().built());
  ExpectIdentityOnView(fix.index.flat_store().view(), 220);
}

TEST(HotHubTest, MatchesMergeJoinOnUnblockedView) {
  // Null out the sidecars: the suffix merge must take the exact-skip
  // flat path and still agree everywhere.
  Fixture fix = BuildFixture(MakeGraph(true, false, 23));
  LabelSetView view = fix.index.flat_store().view();
  view.block_min = nullptr;
  view.block_max = nullptr;
  ExpectIdentityOnView(view, 230);
}

TEST(HotHubTest, MatchesMergeJoinOverMappedV2Index) {
  Fixture fix = BuildFixture(MakeGraph(true, true, 24));
  TempDir dir = TempDir::Create("hot_hub").ValueOrDie();
  const std::string path = dir.File("index.hli2");
  ASSERT_TRUE(MappedIndex::Write(fix.index, fix.mapping, path).ok());
  auto mapped = MappedIndex::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectIdentityOnView(mapped->labels(), 240);

  // And against the mapped index's own (original-id) query path: hub
  // answers over internal ids must round-trip through the permutation.
  const HotHubCache hub = HotHubCache::Build(mapped->labels(), 32);
  Rng rng(77);
  const VertexId n = mapped->num_vertices();
  for (int i = 0; i < 2000; ++i) {
    const VertexId s = rng.Below(n);
    const VertexId t = rng.Below(n);
    ASSERT_EQ(hub.Query(mapped->labels(), mapped->ToInternal(s),
                        mapped->ToInternal(t)),
              mapped->Query(s, t))
        << s << "->" << t;
  }
}

}  // namespace
}  // namespace hopdb
