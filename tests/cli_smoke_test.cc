// End-to-end smoke test for the hopdb_cli binary: generate a small graph,
// build and save an index, then reload and query it — both through the
// CLI and in-process — and check the answers line up. The binary path
// comes from the HOPDB_CLI_BIN environment variable, which the CMake
// test registration points at the freshly built hopdb_cli target.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/graph_io.h"
#include "hopdb.h"
#include "io/temp_dir.h"
#include "search/dijkstra.h"

namespace hopdb {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("HOPDB_CLI_BIN");
    if (bin == nullptr || bin[0] == '\0') {
      GTEST_SKIP() << "HOPDB_CLI_BIN not set (run through ctest)";
    }
    cli_ = bin;
  }

  std::string cli_;
};

TEST_F(CliSmokeTest, GenBuildStatsQueryRoundTrip) {
  auto tmp = TempDir::Create("hopdb_cli_smoke");
  ASSERT_TRUE(tmp.ok()) << tmp.status();
  const std::string graph_path = tmp->path() + "/graph.txt";
  const std::string index_path = tmp->path() + "/graph.hopdb";

  // gen: a small BA graph, text edge list.
  RunResult gen = RunCommand(cli_ + " gen --type ba --n 200 --avg-degree 4" +
                             " --seed 5 --out " + graph_path);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("generated ba graph"), std::string::npos)
      << gen.output;

  // build: hybrid mode, save to index_path.
  RunResult build = RunCommand(cli_ + " build --graph " + graph_path +
                               " --out " + index_path);
  ASSERT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("built index over |V|=200"), std::string::npos)
      << build.output;

  // stats: the saved index loads and reports sane numbers.
  RunResult stats = RunCommand(cli_ + " stats --index " + index_path);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("vertices        200"), std::string::npos)
      << stats.output;

  // Reload the CLI-written index in-process and pick query pairs whose
  // answers we know from ground-truth search on the CLI-written graph.
  auto reloaded = HopDbIndex::Load(index_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->num_vertices(), 200u);

  TextGraphOptions read_options;
  read_options.directed = false;
  read_options.read_weights = false;
  auto edges = ReadTextEdgeList(graph_path, read_options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  auto graph = CsrGraph::FromEdgeList(*edges);
  ASSERT_TRUE(graph.ok()) << graph.status();

  const std::vector<Distance> truth = ExactDistances(*graph, 0);
  for (VertexId t : {VertexId(0), VertexId(1), VertexId(50), VertexId(199)}) {
    const Distance want = truth[t];
    EXPECT_EQ(reloaded->Query(0, t), want) << "reloaded index wrong at " << t;

    RunResult query = RunCommand(cli_ + " query --index " + index_path +
                                 " --src 0 --dst " + std::to_string(t));
    ASSERT_EQ(query.exit_code, 0) << query.output;
    const std::string expected =
        "dist(0, " + std::to_string(t) + ") = " +
        (want == kInfDistance ? std::string("INF") : std::to_string(want));
    EXPECT_NE(query.output.find(expected), std::string::npos)
        << "want \"" << expected << "\" in: " << query.output;
  }

  // query --random: runs and reports a throughput line.
  RunResult random = RunCommand(cli_ + " query --index " + index_path +
                                " --random 100 --seed 9");
  ASSERT_EQ(random.exit_code, 0) << random.output;
  EXPECT_NE(random.output.find("100 random queries"), std::string::npos)
      << random.output;
}

TEST_F(CliSmokeTest, ServeClientRoundTrip) {
  auto tmp = TempDir::Create("hopdb_cli_smoke");
  ASSERT_TRUE(tmp.ok()) << tmp.status();
  const std::string graph_path = tmp->path() + "/graph.txt";
  const std::string index_path = tmp->path() + "/graph.hopdb";

  ASSERT_EQ(RunCommand(cli_ + " gen --type glp --n 150 --avg-degree 5"
                             " --seed 21 --out " + graph_path)
                .exit_code,
            0);
  ASSERT_EQ(RunCommand(cli_ + " build --graph " + graph_path + " --out " +
                       index_path)
                .exit_code,
            0);

  // One shell pipeline (RunCommand's popen runs it via /bin/sh): a 6s
  // server in the background on an OS-assigned port (--port 0, parsed
  // back from its announcement line — no collision flakiness), clients
  // against it, teardown via the duration expiry.
  const std::string serve_log = tmp->path() + "/serve.log";
  const std::string script =
      cli_ + " serve --index " + index_path +
      " --port 0 --threads 2 --duration 6 > " + serve_log +
      " & srv=$!; sleep 1; "
      "port=$(sed -n 's/.*on 127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p' " +
      serve_log + "); " + cli_ +
      " client --port $port --cmd 'PING'; " + cli_ +
      " client --port $port --cmd 'DIST 0 1'; " + cli_ +
      " client --port $port --cmd 'BATCH 0 1 2 3 4'; " + cli_ +
      " client --port $port --cmd 'KNN 0 3'; " + cli_ +
      " client --port $port --cmd 'STATS'; " + cli_ +
      " client --port $port --cmd 'RELOAD'; wait $srv; cat " + serve_log;
  RunResult run = RunCommand(script);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("serving " + index_path), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("OK pong"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("requests="), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("reloaded"), std::string::npos) << run.output;
  // DIST/BATCH/KNN all produced OK payload lines.
  size_t ok_lines = 0;
  for (size_t pos = 0; (pos = run.output.find("OK ", pos)) != std::string::npos;
       pos += 3) {
    ++ok_lines;
  }
  EXPECT_GE(ok_lines, 6u) << run.output;
}

TEST_F(CliSmokeTest, ConvertAndMultiIndexServe) {
  auto tmp = TempDir::Create("hopdb_cli_multi");
  ASSERT_TRUE(tmp.ok()) << tmp.status();
  const std::string graph_a = tmp->path() + "/a.txt";
  const std::string graph_b = tmp->path() + "/b.txt";
  const std::string index_a = tmp->path() + "/a.hopdb";
  const std::string index_b = tmp->path() + "/b.hopdb";
  const std::string hli2_b = tmp->path() + "/b.hli2";

  ASSERT_EQ(RunCommand(cli_ + " gen --type glp --n 150 --avg-degree 5"
                             " --seed 21 --out " + graph_a)
                .exit_code,
            0);
  ASSERT_EQ(RunCommand(cli_ + " gen --type glp --n 90 --avg-degree 4"
                             " --seed 33 --out " + graph_b)
                .exit_code,
            0);
  ASSERT_EQ(RunCommand(cli_ + " build --graph " + graph_a + " --out " +
                       index_a).exit_code,
            0);
  ASSERT_EQ(RunCommand(cli_ + " build --graph " + graph_b + " --out " +
                       index_b).exit_code,
            0);

  // convert verifies the round trip itself (arena checksum + sampled
  // query cross-check) and fails nonzero on any mismatch.
  RunResult convert = RunCommand(cli_ + " convert --in " + index_b +
                                 " --out " + hli2_b);
  ASSERT_EQ(convert.exit_code, 0) << convert.output;
  EXPECT_NE(convert.output.find("mmap-servable"), std::string::npos);

  // Serve the heap index as default plus the HLI2 one under a name;
  // exercise routed queries and runtime ATTACH/DETACH over the wire.
  const std::string serve_log = tmp->path() + "/serve.log";
  const std::string script =
      cli_ + " serve --index " + index_a + " --index second=" + hli2_b +
      " --port 0 --threads 2 --duration 6 > " + serve_log +
      " & srv=$!; sleep 1; "
      "port=$(sed -n 's/.*on 127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p' " +
      serve_log + "); " + cli_ +
      " client --port $port --cmd 'USE second DIST 0 1'; " + cli_ +
      " client --port $port --cmd 'USE second RELOAD'; " + cli_ +
      " client --port $port --cmd 'ATTACH third " + index_b + "'; " + cli_ +
      " client --port $port --cmd 'USE third DIST 0 1'; " + cli_ +
      " client --port $port --cmd 'DETACH third'; " + cli_ +
      " client --port $port --cmd 'STATS'; wait $srv; cat " + serve_log;
  RunResult run = RunCommand(script);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("attached second = " + hli2_b),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("mode=mmap"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("attached third"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("detached third"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("index.second.mode=mmap"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("indexes=2"), std::string::npos) << run.output;
}

TEST_F(CliSmokeTest, HelpAndUsageErrors) {
  RunResult help = RunCommand(cli_ + " help");
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.output.find("usage: hopdb_cli"), std::string::npos);

  // No arguments: usage on stderr, exit 1.
  RunResult bare = RunCommand(cli_);
  EXPECT_EQ(bare.exit_code, 1);
  EXPECT_NE(bare.output.find("usage: hopdb_cli"), std::string::npos);

  // Unknown command and missing required flags both fail cleanly.
  EXPECT_EQ(RunCommand(cli_ + " frobnicate").exit_code, 1);
  EXPECT_EQ(RunCommand(cli_ + " build").exit_code, 1);
  EXPECT_EQ(RunCommand(cli_ + " query --index /nonexistent.hopdb --src 0 --dst 1")
                .exit_code,
            1);
}

}  // namespace
}  // namespace hopdb
