// HLI2 / MappedIndex coverage: convert round trips are query-identical
// to the source index, every engine (point, one-to-many, KNN) agrees
// between the heap and mmap representations, and malformed files —
// truncated, bit-flipped header/metadata/arena, wrong magic — fail with
// clean checksum/validation errors instead of crashing (the suite runs
// under ASan/TSan in CI). Also covers read-only file permissions and
// the LoadServingSnapshot format dispatch.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gen/barabasi_albert.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "hopdb.h"
#include "io/temp_dir.h"
#include "labeling/mapped_index.h"
#include "query/batch.h"
#include "query/knn.h"
#include "server/index_registry.h"
#include "util/random.h"
#include "util/serde.h"

namespace hopdb {
namespace {

EdgeList TestGraph(VertexId n, uint64_t seed, bool directed, bool weighted) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = 5.0;
  options.seed = seed;
  EdgeList edges = (directed ? GenerateDirectedGlp(options)
                             : GenerateGlp(options))
                       .ValueOrDie();
  if (weighted) {
    AssignUniformWeights(&edges, 1, 7, DeriveSeed(seed, 5));
  }
  return edges;
}

class MappedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override { tmp_ = TempDir::Create("mapped").ValueOrDie(); }

  /// Builds an index, saves HLI1 + HLI2, and returns (heap index, path
  /// of the HLI2 file).
  std::pair<HopDbIndex, std::string> BuildBoth(VertexId n, uint64_t seed,
                                               bool directed,
                                               bool weighted,
                                               const std::string& stem) {
    HopDbIndex index =
        HopDbIndex::Build(TestGraph(n, seed, directed, weighted))
            .ValueOrDie();
    const std::string hli2 = tmp_->path() + "/" + stem + ".hli2";
    EXPECT_TRUE(
        MappedIndex::Write(index.label_index(), index.ranking(), hli2).ok());
    return {std::move(index), hli2};
  }

  std::string ReadFile(const std::string& path) {
    std::string data;
    EXPECT_TRUE(ReadFileToString(path, &data).ok());
    return data;
  }

  void WriteFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(WriteStringToFile(path, data).ok());
  }

  Result<TempDir> tmp_ = Status::Internal("not set up");
};

/// Mirror of the canonical v2 section layout (derived offsets, 64-byte
/// aligned, in fixed order) so corruption tests can aim at a specific
/// section. Kept in lockstep with docs/FORMATS.md.
struct V2Layout {
  uint64_t offsets_off, sizes_off, pivots_off, dists_off, block_min_off,
      block_max_off, rank_to_orig_off, orig_to_rank_off, file_size;
};

V2Layout ComputeV2Layout(const std::string& data) {
  const uint8_t* hd = reinterpret_cast<const uint8_t*>(data.data());
  const uint64_t flags = DecodeU64(hd + 8);
  const uint64_t n = DecodeU32(hd + 16);
  const uint64_t slots = (flags & 1) != 0 ? 2 * n : n;
  const uint64_t padded = DecodeU64(hd + 32);
  const uint64_t blocks = padded / 16;
  auto align = [](uint64_t off) { return (off + 63) & ~uint64_t{63}; };
  V2Layout l;
  l.offsets_off = align(128);
  l.sizes_off = align(l.offsets_off + (slots + 1) * 8);
  l.pivots_off = align(l.sizes_off + slots * 4);
  l.dists_off = align(l.pivots_off + padded * 4);
  l.block_min_off = align(l.dists_off + padded * 4);
  l.block_max_off = align(l.block_min_off + blocks * 4);
  l.rank_to_orig_off = align(l.block_max_off + blocks * 4);
  l.orig_to_rank_off = align(l.rank_to_orig_off + n * 4);
  l.file_size = l.orig_to_rank_off + n * 4;
  return l;
}

TEST_F(MappedIndexTest, RoundTripIsQueryIdenticalToHeapIndex) {
  for (const bool directed : {false, true}) {
    for (const bool weighted : {false, true}) {
      auto [index, hli2] =
          BuildBoth(180, 11, directed, weighted,
                    "rt" + std::to_string(directed) + std::to_string(weighted));
      MappedIndex mapped = MappedIndex::Open(hli2).ValueOrDie();
      EXPECT_EQ(mapped.num_vertices(), index.num_vertices());
      EXPECT_EQ(mapped.directed(), directed);
      EXPECT_EQ(mapped.TotalEntries(), index.label_index().TotalEntries());
      for (VertexId s = 0; s < index.num_vertices(); s += 7) {
        for (VertexId t = 0; t < index.num_vertices(); ++t) {
          ASSERT_EQ(mapped.Query(s, t), index.Query(s, t))
              << "directed=" << directed << " weighted=" << weighted
              << " s=" << s << " t=" << t;
        }
      }
    }
  }
}

TEST_F(MappedIndexTest, VerifyArenasPassesOnIntactFile) {
  auto [index, hli2] = BuildBoth(120, 3, false, false, "intact");
  MappedIndex::OpenOptions options;
  options.verify_arenas = true;
  auto mapped = MappedIndex::Open(hli2, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->VerifyArenas().ok());
}

TEST_F(MappedIndexTest, PrefaultOpenServesIdenticalAnswers) {
  // prefault is advisory readahead (madvise WILLNEED) for embedders
  // that want warm first queries; it must change timing only, never
  // answers or residency semantics.
  auto [index, hli2] = BuildBoth(130, 29, false, false, "prefault");
  MappedIndex::OpenOptions options;
  options.prefault = true;
  auto mapped = MappedIndex::Open(hli2, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  for (VertexId t = 0; t < 130; ++t) {
    ASSERT_EQ(mapped->Query(5, t), index.Query(5, t)) << "t=" << t;
  }
  EXPECT_LE(mapped->ResidentBytes(),
            mapped->MappedBytes() + 4096);  // page-rounded upper bound
}

TEST_F(MappedIndexTest, EnginesAgreeBetweenHeapAndMapped) {
  auto [index, hli2] = BuildBoth(250, 23, true, false, "engines");
  MappedIndex mapped = MappedIndex::Open(hli2).ValueOrDie();
  const TwoHopIndex& labels = index.label_index();

  // One-to-many over INTERNAL ids: the mapped view must reproduce the
  // heap engine bucket for bucket.
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < labels.num_vertices(); t += 3) {
    targets.push_back(t);
  }
  OneToManyEngine heap_engine(labels, targets);
  OneToManyEngine mapped_engine(mapped.labels(), targets);
  for (VertexId s = 0; s < labels.num_vertices(); s += 17) {
    ASSERT_EQ(heap_engine.Query(s), mapped_engine.Query(s)) << "s=" << s;
  }

  // KNN likewise, both directions.
  for (const auto direction : {KnnEngine::Direction::kForward,
                               KnnEngine::Direction::kBackward}) {
    KnnEngine heap_knn(labels, direction);
    KnnEngine mapped_knn(mapped.labels(), direction);
    for (VertexId s = 0; s < labels.num_vertices(); s += 29) {
      ASSERT_EQ(heap_knn.Query(s, 12), mapped_knn.Query(s, 12)) << "s=" << s;
    }
  }
}

TEST_F(MappedIndexTest, TruncatedFilesFailCleanly) {
  auto [index, hli2] = BuildBoth(150, 7, false, false, "trunc");
  const std::string data = ReadFile(hli2);
  // Every truncation point must produce a clean error — never a crash
  // or an OOB read. Sweep a few structurally interesting prefixes.
  const size_t cuts[] = {0, 3, 64, 127, 128, data.size() / 2,
                         data.size() - 1};
  for (const size_t cut : cuts) {
    const std::string path = tmp_->path() + "/cut" + std::to_string(cut);
    WriteFile(path, data.substr(0, cut));
    auto mapped = MappedIndex::Open(path);
    EXPECT_FALSE(mapped.ok()) << "cut=" << cut;
  }
}

TEST_F(MappedIndexTest, HeaderCorruptionFailsChecksum) {
  auto [index, hli2] = BuildBoth(150, 7, false, false, "hdrcorrupt");
  std::string data = ReadFile(hli2);
  data[17] = static_cast<char>(data[17] ^ 0x40);  // inside num_vertices
  const std::string path = tmp_->path() + "/hdrbad.hli2";
  WriteFile(path, data);
  auto mapped = MappedIndex::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("checksum"), std::string::npos)
      << mapped.status();
}

TEST_F(MappedIndexTest, OffsetTableCorruptionFailsMetadataChecksum) {
  auto [index, hli2] = BuildBoth(150, 7, false, false, "offcorrupt");
  std::string data = ReadFile(hli2);
  data[192] = static_cast<char>(data[192] ^ 0x01);  // inside the offsets
  const std::string path = tmp_->path() + "/offbad.hli2";
  WriteFile(path, data);
  auto mapped = MappedIndex::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("checksum"), std::string::npos)
      << mapped.status();
}

TEST_F(MappedIndexTest, ArenaCorruptionIsBoundsSafeAndDetectable) {
  auto [index, hli2] = BuildBoth(200, 9, false, false, "arenacorrupt");
  std::string data = ReadFile(hli2);
  // Flip a byte in the middle of the label arenas (past the offset
  // table, before the permutations — the region NOT hashed at open).
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x10);
  const std::string path = tmp_->path() + "/arenabad.hli2";
  WriteFile(path, data);

  // Plain open succeeds by design (O(1) load skips the arena hash)...
  auto mapped = MappedIndex::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // ...queries stay memory-safe (possibly wrong, never OOB — this runs
  // under ASan in CI)...
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(200));
    const VertexId t = static_cast<VertexId>(rng.Below(200));
    (void)mapped->Query(s, t);
  }
  // ...and both explicit verification paths report the corruption.
  const Status verify = mapped->VerifyArenas();
  ASSERT_FALSE(verify.ok());
  EXPECT_NE(verify.message().find("checksum"), std::string::npos) << verify;
  MappedIndex::OpenOptions options;
  options.verify_arenas = true;
  EXPECT_FALSE(MappedIndex::Open(path, options).ok());
}

TEST_F(MappedIndexTest, OutOfRangePivotsInArenaCannotCrashEngines) {
  auto [index, hli2] = BuildBoth(200, 9, false, false, "hugepivot");
  std::string data = ReadFile(hli2);
  // Overwrite the first few pivot entries with 0xffffffff — far past
  // num_vertices. The arenas are unhashed at open, and the batch/KNN
  // engines index arrays by pivot, so these must be skipped, not
  // followed (ASan enforces the "never OOB" half of the contract).
  const uint64_t pivots_off = ComputeV2Layout(data).pivots_off;
  for (size_t i = 0; i < 16; ++i) {
    data[pivots_off + i] = static_cast<char>(0xff);
  }
  const std::string path = tmp_->path() + "/hugepivot_bad.hli2";
  WriteFile(path, data);

  auto mapped = MappedIndex::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < 200; t += 2) targets.push_back(t);
  OneToManyEngine batch_engine(mapped->labels(), targets);
  KnnEngine knn_engine(mapped->labels(), KnnEngine::Direction::kForward);
  for (VertexId s = 0; s < 200; s += 11) {
    (void)batch_engine.Query(s);
    (void)knn_engine.Query(s, 10);
    (void)mapped->Query(s, (s * 7 + 3) % 200);
  }
  // The corruption is still detectable the documented way.
  EXPECT_FALSE(mapped->VerifyArenas().ok());
}

TEST_F(MappedIndexTest, V1FilesStayReadableAndQueryIdentical) {
  // Back compat: the version-gated Open must keep serving v1 files
  // (packed arenas, no sidecars) through the unblocked kernel paths.
  auto [index, hli2] = BuildBoth(180, 41, true, true, "v1compat");
  const std::string v1 = tmp_->path() + "/v1compat.v1.hli2";
  ASSERT_TRUE(MappedIndex::WriteVersion(index.label_index(), index.ranking(),
                                        v1, 1)
                  .ok());
  MappedIndex::OpenOptions options;
  options.verify_arenas = true;
  auto old_file = MappedIndex::Open(v1, options);
  ASSERT_TRUE(old_file.ok()) << old_file.status();
  EXPECT_EQ(old_file->format_version(), 1u);
  EXPECT_EQ(old_file->PaddedEntries(), old_file->TotalEntries());
  MappedIndex current = MappedIndex::Open(hli2).ValueOrDie();
  EXPECT_EQ(current.format_version(), 2u);
  for (VertexId s = 0; s < 180; s += 7) {
    for (VertexId t = 0; t < 180; t += 3) {
      ASSERT_EQ(old_file->Query(s, t), index.Query(s, t));
      ASSERT_EQ(current.Query(s, t), index.Query(s, t));
    }
  }
  // Engines accept the sidecar-less v1 view too.
  OneToManyEngine engine(old_file->labels(), {0, 3, 9, 44});
  (void)engine.Query(2);
  EXPECT_FALSE(
      MappedIndex::WriteVersion(index.label_index(), index.ranking(),
                                tmp_->path() + "/v0.hli2", 0)
          .ok());
  EXPECT_FALSE(
      MappedIndex::WriteVersion(index.label_index(), index.ranking(),
                                tmp_->path() + "/v3.hli2", 3)
          .ok());
}

TEST_F(MappedIndexTest, CraftedSectionReorderingIsRejectedOnV1) {
  auto [index, hli2] = BuildBoth(150, 7, false, false, "reorder");
  const std::string v1 = tmp_->path() + "/reorder.v1.hli2";
  ASSERT_TRUE(MappedIndex::WriteVersion(index.label_index(), index.ranking(),
                                        v1, 1)
                  .ok());
  std::string data = ReadFile(v1);
  uint8_t* bytes = reinterpret_cast<uint8_t*>(data.data());
  // Swap the claimed offsets/pivots section positions (both 64-aligned
  // and individually inside the file) and re-seal the header checksum.
  // Pairwise size arithmetic like `pivots_off - offsets_off` would
  // underflow to ~2^64 and checksum far past the mapping; the canonical
  // layout check must reject this before any section byte is touched.
  // (v2 headers no longer store section offsets at all, so the attack
  // surface only exists on v1 files.)
  const uint64_t offsets_off = DecodeU64(bytes + 32);
  const uint64_t pivots_off = DecodeU64(bytes + 40);
  EncodeU64(pivots_off, bytes + 32);
  EncodeU64(offsets_off, bytes + 40);
  EncodeU64(Fnv1a64(bytes, 96), bytes + 96);
  const std::string path = tmp_->path() + "/reorder_bad.hli2";
  WriteFile(path, data);
  auto mapped = MappedIndex::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("canonical layout"),
            std::string::npos)
      << mapped.status();
}

TEST_F(MappedIndexTest, CraftedHugeTotalEntriesIsRejected) {
  auto [index, hli2] = BuildBoth(150, 7, false, false, "hugetotal");
  std::string data = ReadFile(hli2);
  uint8_t* bytes = reinterpret_cast<uint8_t*>(data.data());
  // total_entries * 4 wraps to a tiny number for 2^62 + 1: a naive
  // bounds check would pass and queries would read far outside the
  // mapping. Re-seal the header checksum so only the overflow guard
  // can reject the file.
  EncodeU64((1ull << 62) + 1, bytes + 24);
  EncodeU64(Fnv1a64(bytes, 64), bytes + 64);
  const std::string path = tmp_->path() + "/hugetotal_bad.hli2";
  WriteFile(path, data);
  auto mapped = MappedIndex::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("total_entries"),
            std::string::npos)
      << mapped.status();
  // Same for a crafted padded_entries (huge, unaligned, or smaller than
  // total_entries).
  for (const uint64_t bad :
       {(uint64_t{1} << 62) + 16, uint64_t{8}, uint64_t{0}}) {
    std::string crafted = ReadFile(hli2);
    uint8_t* cb = reinterpret_cast<uint8_t*>(crafted.data());
    EncodeU64(bad, cb + 32);
    EncodeU64(Fnv1a64(cb, 64), cb + 64);
    const std::string p =
        tmp_->path() + "/hugepadded_" + std::to_string(bad) + ".hli2";
    WriteFile(p, crafted);
    EXPECT_FALSE(MappedIndex::Open(p).ok()) << bad;
  }
}

TEST_F(MappedIndexTest, BlockSidecarCorruptionIsBoundsSafeAndDetectable) {
  // The block min/max sidecars steer which 64-byte blocks the skip-scan
  // kernels visit. Corrupt sidecars (non-monotone minima, garbage
  // maxima) may mis-answer but must never read out of the mapped
  // arenas, and VerifyArenas must flag the file.
  auto [index, hli2] = BuildBoth(200, 17, false, false, "sidecar");
  std::string data = ReadFile(hli2);
  const V2Layout l = ComputeV2Layout(data);
  ASSERT_LT(l.block_min_off, l.block_max_off);
  // Non-monotone block minima: descending garbage across the section.
  for (uint64_t off = l.block_min_off; off + 4 <= l.block_max_off; off += 4) {
    EncodeU32(static_cast<uint32_t>(0xFFFFFFF0u - off),
              reinterpret_cast<uint8_t*>(data.data()) + off);
  }
  // And a few zeroed maxima, so max < min within single blocks too.
  for (uint64_t off = l.block_max_off; off < l.block_max_off + 32; off += 4) {
    EncodeU32(0, reinterpret_cast<uint8_t*>(data.data()) + off);
  }
  const std::string path = tmp_->path() + "/sidecar_bad.hli2";
  WriteFile(path, data);

  auto mapped = MappedIndex::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  Rng rng(47);
  for (int i = 0; i < 500; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(200));
    const VertexId t = static_cast<VertexId>(rng.Below(200));
    (void)mapped->Query(s, t);  // ASan enforces "never OOB"
  }
  EXPECT_FALSE(mapped->VerifyArenas().ok());
  MappedIndex::OpenOptions options;
  options.verify_arenas = true;
  EXPECT_FALSE(MappedIndex::Open(path, options).ok());

  // Truncating inside the sidecar sections must fail cleanly at open.
  for (const uint64_t cut : {l.block_min_off + 2, l.block_max_off + 2}) {
    const std::string p = tmp_->path() + "/cutside" + std::to_string(cut);
    WriteFile(p, data.substr(0, cut));
    EXPECT_FALSE(MappedIndex::Open(p).ok()) << cut;
  }
}

TEST_F(MappedIndexTest, CraftedSlotSizeInconsistencyIsRejected) {
  // v2 stores per-slot real sizes next to padded block offsets; a size
  // that disagrees with its slot's block span (or with total_entries)
  // must be rejected at open — it would let size > padded span walk the
  // kernels past the slot's arena range.
  auto [index, hli2] = BuildBoth(150, 7, false, false, "slotsize");
  std::string data = ReadFile(hli2);
  uint8_t* bytes = reinterpret_cast<uint8_t*>(data.data());
  const V2Layout l = ComputeV2Layout(data);
  const uint32_t size0 = DecodeU32(bytes + l.sizes_off);
  // Bump slot 0's size past its padded block span.
  EncodeU32(size0 + 16, bytes + l.sizes_off);
  // Re-seal the metadata checksum so only the structural check fires.
  uint64_t meta = Fnv1a64(bytes + l.offsets_off, l.pivots_off - l.offsets_off);
  meta ^= Fnv1a64(bytes + l.rank_to_orig_off, l.file_size - l.rank_to_orig_off);
  EncodeU64(meta, bytes + 48);
  EncodeU64(Fnv1a64(bytes, 64), bytes + 64);
  const std::string path = tmp_->path() + "/slotsize_bad.hli2";
  WriteFile(path, data);
  auto mapped = MappedIndex::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().message().find("slot sizes"), std::string::npos)
      << mapped.status();
}

TEST_F(MappedIndexTest, RejectsForeignAndGarbageFiles) {
  auto [index, hli2] = BuildBoth(120, 5, false, false, "foreign");
  // An HLI1 file is not mappable.
  const std::string hli1 = tmp_->path() + "/plain.hopdb";
  ASSERT_TRUE(index.Save(hli1).ok());
  EXPECT_FALSE(MappedIndex::Open(hli1).ok());
  // Nor is garbage, an empty file, or a directory.
  const std::string garbage = tmp_->path() + "/garbage";
  WriteFile(garbage, std::string(4096, 'x'));
  EXPECT_FALSE(MappedIndex::Open(garbage).ok());
  const std::string empty = tmp_->path() + "/empty";
  WriteFile(empty, "");
  EXPECT_FALSE(MappedIndex::Open(empty).ok());
  EXPECT_FALSE(MappedIndex::Open(tmp_->path() + "/missing.hli2").ok());
}

TEST_F(MappedIndexTest, OpensReadOnlyFiles) {
  auto [index, hli2] = BuildBoth(140, 13, false, false, "readonly");
  ASSERT_EQ(chmod(hli2.c_str(), 0444), 0);
  auto mapped = MappedIndex::Open(hli2);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  for (VertexId t = 0; t < 140; ++t) {
    ASSERT_EQ(mapped->Query(0, t), index.Query(0, t)) << "t=" << t;
  }
  // Restore write permission so TempDir cleanup can remove the file.
  chmod(hli2.c_str(), 0644);
}

TEST_F(MappedIndexTest, MutationNotSupportedStatus) {
  const Status status = MappedIndex::MutationNotSupported("AddLabelEntry");
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("read-only"), std::string::npos);
  EXPECT_NE(status.message().find("AddLabelEntry"), std::string::npos);
}

TEST_F(MappedIndexTest, LoadServingSnapshotDispatchesOnMagic) {
  auto [index, hli2] = BuildBoth(160, 19, false, false, "snapdispatch");
  const std::string hli1 = tmp_->path() + "/snapdispatch.hopdb";
  ASSERT_TRUE(index.Save(hli1).ok());

  auto heap_snap = LoadServingSnapshot(hli1, 64);
  ASSERT_TRUE(heap_snap.ok()) << heap_snap.status();
  EXPECT_FALSE((*heap_snap)->mapped());
  EXPECT_STREQ((*heap_snap)->map_mode(), "heap");

  auto mmap_snap = LoadServingSnapshot(hli2, 64);
  ASSERT_TRUE(mmap_snap.ok()) << mmap_snap.status();
  EXPECT_TRUE((*mmap_snap)->mapped());
  EXPECT_STREQ((*mmap_snap)->map_mode(), "mmap");
  EXPECT_GT((*mmap_snap)->ResidentBytes(), 0u);

  // Snapshot-level query dispatch agrees across backings (original ids).
  for (VertexId t = 0; t < 160; t += 3) {
    ASSERT_EQ((*heap_snap)->Query(1, t), (*mmap_snap)->Query(1, t));
    ASSERT_EQ((*heap_snap)->QueryKnn(t, 5), (*mmap_snap)->QueryKnn(t, 5));
  }
  const std::vector<VertexId> targets = {0, 5, 9, 33, 150, 5};
  for (VertexId s = 0; s < 160; s += 31) {
    ASSERT_EQ((*heap_snap)->QueryOneToMany(s, targets),
              (*mmap_snap)->QueryOneToMany(s, targets));
  }
}

TEST_F(MappedIndexTest, BarabasiAlbertDirectedRoundTrip) {
  BaOptions ba;
  ba.num_vertices = 220;
  ba.edges_per_vertex = 3;
  ba.seed = 77;
  EdgeList undirected = GenerateBarabasiAlbert(ba).ValueOrDie();
  EdgeList edges(undirected.num_vertices(), true);
  for (const Edge& e : undirected.edges()) edges.Add(e.src, e.dst);
  edges.Normalize();
  HopDbIndex index = HopDbIndex::Build(edges).ValueOrDie();
  const std::string hli2 = tmp_->path() + "/ba.hli2";
  ASSERT_TRUE(
      MappedIndex::Write(index.label_index(), index.ranking(), hli2).ok());
  MappedIndex mapped = MappedIndex::Open(hli2).ValueOrDie();
  Rng rng(123);
  for (int i = 0; i < 4000; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(220));
    const VertexId t = static_cast<VertexId>(rng.Below(220));
    ASSERT_EQ(mapped.Query(s, t), index.Query(s, t));
  }
}

}  // namespace
}  // namespace hopdb
