// Oracle cross-check: on random scale-free graphs (Barabási–Albert and
// GLP, the paper's synthetic families), every HopDbIndex::Query answer
// must equal the BFS/Dijkstra ground truth AND agree with the PLL and
// IS-Label baseline indexes. This is the tier-1 correctness anchor: the
// three independent labeling implementations plus a direct search can
// only agree on every sampled pair if all of them are exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/is_label.h"
#include "baselines/pll.h"
#include "gen/barabasi_albert.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "hopdb.h"
#include "io/temp_dir.h"
#include "labeling/compressed_index.h"
#include "labeling/incremental.h"
#include "labeling/mapped_index.h"
#include "labeling/query_kernel.h"
#include "query/knn.h"
#include "query/path.h"
#include "search/dijkstra.h"
#include "util/random.h"

namespace hopdb {
namespace {

// Sources checked exhaustively against every target.
constexpr VertexId kSampleSources = 12;

// Builds HopDb, PLL, and IS-Label over `edges` and checks all four
// oracles agree from sampled sources to all targets (original ids).
void CrossCheck(const EdgeList& edges, uint64_t seed) {
  auto graph = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(graph.ok()) << graph.status();

  // System under test: the hop-doubling index, original-id facade.
  auto hopdb = HopDbIndex::Build(*graph);
  ASSERT_TRUE(hopdb.ok()) << hopdb.status();

  // PLL runs on the rank-relabeled graph (internal id == rank), so its
  // queries go through the same mapping HopDb uses internally.
  const RankMapping mapping = ComputeRanking(
      *graph,
      graph->directed() ? RankingPolicy::kInOutProduct : RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*graph, mapping);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  auto pll = BuildPll(*ranked);
  ASSERT_TRUE(pll.ok()) << pll.status();

  // IS-Label works directly on original ids.
  auto isl = BuildIsLabel(*graph);
  ASSERT_TRUE(isl.ok()) << isl.status();

  const VertexId n = graph->num_vertices();
  Rng rng(seed);
  for (VertexId i = 0; i < kSampleSources && i < n; ++i) {
    const VertexId s = n <= kSampleSources
                           ? i
                           : static_cast<VertexId>(rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*graph, s);
    const VertexId s_int = mapping.ToInternal(s);
    for (VertexId t = 0; t < n; ++t) {
      const Distance want = truth[t];
      ASSERT_EQ(hopdb->Query(s, t), want)
          << "HopDb mismatch at (" << s << ", " << t << ")";
      ASSERT_EQ(pll->index.Query(s_int, mapping.ToInternal(t)), want)
          << "PLL mismatch at (" << s << ", " << t << ")";
      ASSERT_EQ(isl->index.Query(s, t), want)
          << "IS-Label mismatch at (" << s << ", " << t << ")";
    }
  }
}

EdgeList BaGraph(VertexId n, uint32_t m, uint64_t seed) {
  BaOptions options;
  options.num_vertices = n;
  options.edges_per_vertex = m;
  options.seed = seed;
  return GenerateBarabasiAlbert(options).ValueOrDie();
}

EdgeList GlpGraph(VertexId n, double avg_degree, uint64_t seed) {
  GlpOptions options;
  options.num_vertices = n;
  options.target_avg_degree = avg_degree;
  options.seed = seed;
  return GenerateGlp(options).ValueOrDie();
}

TEST(OracleCrossCheckTest, BarabasiAlbertUnweighted) {
  CrossCheck(BaGraph(400, 3, /*seed=*/11), /*seed=*/21);
}

TEST(OracleCrossCheckTest, BarabasiAlbertWeighted) {
  EdgeList edges = BaGraph(300, 2, /*seed=*/12);
  AssignUniformWeights(&edges, 1, 9, /*seed=*/13);
  CrossCheck(edges, /*seed=*/22);
}

TEST(OracleCrossCheckTest, GlpUnweighted) {
  CrossCheck(GlpGraph(400, 4.0, /*seed=*/14), /*seed=*/23);
}

TEST(OracleCrossCheckTest, GlpWeighted) {
  EdgeList edges = GlpGraph(300, 3.0, /*seed=*/15);
  AssignUniformWeights(&edges, 1, 7, /*seed=*/16);
  CrossCheck(edges, /*seed=*/24);
}

TEST(OracleCrossCheckTest, GlpDirected) {
  GlpOptions options;
  options.num_vertices = 300;
  options.target_avg_degree = 4.0;
  options.seed = 17;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  CrossCheck(*edges, /*seed=*/25);
}

// Every query kernel (scalar and whatever SIMD widths this CPU offers)
// must produce the BFS ground truth bit-for-bit: same index, same sampled
// pairs, swept once per kernel. This is the randomized-graph leg of the
// scalar-vs-SIMD agreement guarantee (the unit-level leg lives in
// query_kernel_test).
void KernelSweep(const EdgeList& edges, uint64_t seed) {
  auto graph = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto hopdb = HopDbIndex::Build(*graph);
  ASSERT_TRUE(hopdb.ok()) << hopdb.status();

  const std::string original_kernel = ActiveQueryKernel().name;
  const VertexId n = graph->num_vertices();
  Rng rng(seed);
  for (VertexId i = 0; i < kSampleSources && i < n; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*graph, s);
    for (const QueryKernel* kernel : SupportedQueryKernels()) {
      ASSERT_TRUE(SetActiveQueryKernel(kernel->name));
      for (VertexId t = 0; t < n; ++t) {
        ASSERT_EQ(hopdb->Query(s, t), truth[t])
            << "kernel " << kernel->name << " mismatch at (" << s << ", "
            << t << ")";
      }
    }
  }
  ASSERT_TRUE(SetActiveQueryKernel(original_kernel));
}

TEST(OracleCrossCheckTest, QueryKernelsMatchOracleBa) {
  KernelSweep(BaGraph(400, 3, /*seed=*/41), /*seed=*/51);
}

TEST(OracleCrossCheckTest, QueryKernelsMatchOracleGlpWeighted) {
  EdgeList edges = GlpGraph(300, 4.0, /*seed=*/42);
  AssignUniformWeights(&edges, 1, 9, /*seed=*/43);
  KernelSweep(edges, /*seed=*/52);
}

TEST(OracleCrossCheckTest, QueryKernelsMatchOracleGlpDirected) {
  GlpOptions options;
  options.num_vertices = 300;
  options.target_avg_degree = 4.0;
  options.seed = 44;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  KernelSweep(*edges, /*seed=*/53);
}

// Update-stream leg: apply a random edge-update stream through the
// incremental repairer, then cross-check the repaired index against the
// BFS/Dijkstra oracle AND a PLL index built from scratch on the mutated
// graph. Three independent answers (repair, fresh PLL, direct search)
// can only agree everywhere if the repair is exact.
void UpdateStreamCrossCheck(const EdgeList& edges, uint64_t seed,
                            int num_ops) {
  auto graph = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto hopdb = HopDbIndex::Build(*graph);
  ASSERT_TRUE(hopdb.ok()) << hopdb.status();

  // The updater works in internal (rank) ids on the relabeled graph.
  const RankMapping& mapping = hopdb->ranking();
  auto ranked = RelabelByRank(*graph, mapping);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  DynamicGraph dynamic = DynamicGraph::FromGraph(*ranked);
  IncrementalUpdater updater(&dynamic, &hopdb->mutable_label_index());

  const VertexId n = graph->num_vertices();
  const bool weighted = edges.weighted();
  Rng rng(seed);
  int applied = 0;
  while (applied < num_ops) {
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    UpdateOp op;
    op.u = u;
    op.v = v;
    if (dynamic.ArcWeight(u, v) != kInfDistance && rng.NextDouble() < 0.5) {
      op.kind = UpdateOp::Kind::kDelEdge;
    } else {
      op.kind = UpdateOp::Kind::kAddEdge;
      op.weight = weighted ? static_cast<Distance>(rng.Uniform(1, 9)) : 1;
    }
    auto changed = updater.Apply(op);
    ASSERT_TRUE(changed.ok()) << changed.status();
    if (*changed) ++applied;
  }
  updater.Finalize();

  // Freeze the mutated graph (internal ids) and rebuild the baselines.
  auto mutated = CsrGraph::FromEdgeList(dynamic.ToEdgeList());
  ASSERT_TRUE(mutated.ok()) << mutated.status();
  auto pll = BuildPll(*mutated);
  ASSERT_TRUE(pll.ok()) << pll.status();

  Rng sample_rng(DeriveSeed(seed, 5));
  for (VertexId i = 0; i < kSampleSources && i < n; ++i) {
    const VertexId s_int = static_cast<VertexId>(sample_rng.Below(n));
    const VertexId s = mapping.ToOriginal(s_int);
    const std::vector<Distance> truth = ExactDistances(*mutated, s_int);
    for (VertexId t_int = 0; t_int < n; ++t_int) {
      const Distance want = truth[t_int];
      ASSERT_EQ(hopdb->Query(s, mapping.ToOriginal(t_int)), want)
          << "repaired HopDb mismatch at internal (" << s_int << ", "
          << t_int << ")";
      ASSERT_EQ(pll->index.Query(s_int, t_int), want)
          << "PLL mismatch at internal (" << s_int << ", " << t_int << ")";
    }
  }
}

TEST(OracleCrossCheckTest, UpdateStreamUnweightedGlp) {
  UpdateStreamCrossCheck(GlpGraph(300, 4.0, /*seed=*/61), /*seed=*/62,
                         /*num_ops=*/120);
}

TEST(OracleCrossCheckTest, UpdateStreamWeightedBa) {
  EdgeList edges = BaGraph(250, 2, /*seed=*/63);
  AssignUniformWeights(&edges, 1, 9, /*seed=*/64);
  UpdateStreamCrossCheck(edges, /*seed=*/65, /*num_ops=*/100);
}

// -----------------------------------------------------------------------
// Richer query verbs: WITHIN / REACH / PATH against the same oracles,
// swept over the serving backings (heap labels, HLI2 v1 + v2 mmap files,
// HLC1 compressed). Every backing re-expresses one build's labels, so
// one verb disagreeing on one backing pinpoints that backing's decode.
// -----------------------------------------------------------------------

// One backing's labels as an engine-compatible view plus a point-query
// function in internal (rank) ids.
struct Backing {
  std::string name;
  std::function<Distance(VertexId, VertexId)> query;  // internal ids
  std::unique_ptr<KnnEngine> knn;                     // null: no flat view
};

void VerbOracleSweep(const EdgeList& edges, uint64_t seed) {
  auto graph = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto hopdb = HopDbIndex::Build(*graph);
  ASSERT_TRUE(hopdb.ok()) << hopdb.status();
  const RankMapping& mapping = hopdb->ranking();

  auto tmp = TempDir::Create("verbs");
  ASSERT_TRUE(tmp.ok()) << tmp.status();

  // Materialize the backings. The mmap files and the compressed form all
  // come from the one heap build.
  std::vector<MappedIndex> mapped;
  for (uint32_t version : {1u, 2u}) {
    const std::string path =
        tmp->File("labels.v" + std::to_string(version) + ".hli2");
    ASSERT_TRUE(MappedIndex::WriteVersion(hopdb->label_index(),
                                          hopdb->ranking(), path, version)
                    .ok());
    auto opened = MappedIndex::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status();
    mapped.push_back(std::move(opened).value());
  }
  auto compressed = CompressedIndex::FromIndex(hopdb->label_index());
  ASSERT_TRUE(compressed.ok()) << compressed.status();
  // The compressed backing has no flat label view; its WITHIN leg runs
  // over the decompressed labels (exact round trip is its own test).
  auto expanded = compressed->Decompress();
  ASSERT_TRUE(expanded.ok()) << expanded.status();

  std::vector<Backing> backings;
  backings.push_back(
      {"heap",
       [&](VertexId s, VertexId t) {
         return hopdb->Query(mapping.ToOriginal(s), mapping.ToOriginal(t));
       },
       std::make_unique<KnnEngine>(hopdb->label_index(),
                                   KnnEngine::Direction::kForward)});
  for (size_t i = 0; i < mapped.size(); ++i) {
    const MappedIndex* m = &mapped[i];
    backings.push_back(
        {i == 0 ? "hli2-v1" : "hli2-v2",
         [&mapping, m](VertexId s, VertexId t) {
           return m->Query(mapping.ToOriginal(s), mapping.ToOriginal(t));
         },
         std::make_unique<KnnEngine>(m->labels(),
                                     KnnEngine::Direction::kForward)});
  }
  backings.push_back(
      {"compressed",
       [&](VertexId s, VertexId t) { return compressed->Query(s, t); },
       std::make_unique<KnnEngine>(*expanded,
                                   KnnEngine::Direction::kForward)});

  // PATH runs on the heap index only (it needs the build graph).
  auto querier = HopDbPathQuerier::Create(*hopdb, *graph);
  ASSERT_TRUE(querier.ok()) << querier.status();

  const VertexId n = graph->num_vertices();
  const Distance radius = edges.weighted() ? 6 : 3;
  const Distance bound = edges.weighted() ? 8 : 4;
  Rng rng(seed);
  for (VertexId i = 0; i < kSampleSources && i < n; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const VertexId s_int = mapping.ToInternal(s);
    const std::vector<Distance> truth = ExactDistances(*graph, s);

    for (const Backing& backing : backings) {
      // WITHIN == {v : d(s, v) <= r}, distances included.
      std::vector<KnnEngine::Neighbor> within =
          backing.knn->QueryWithin(s_int, radius);
      std::vector<std::pair<VertexId, Distance>> got;
      for (const KnnEngine::Neighbor& nb : within) {
        got.emplace_back(mapping.ToOriginal(nb.vertex), nb.dist);
      }
      std::sort(got.begin(), got.end());
      std::vector<std::pair<VertexId, Distance>> want;
      for (VertexId v = 0; v < n; ++v) {
        if (v != s && truth[v] <= radius) want.emplace_back(v, truth[v]);
      }
      ASSERT_EQ(got, want) << backing.name << " WITHIN(" << s << ", r="
                           << radius << ") disagrees with the oracle";

      // REACH == bounded-BFS/Dijkstra verdict, on sampled targets.
      for (int j = 0; j < 24; ++j) {
        const VertexId t = static_cast<VertexId>(rng.Below(n));
        const Distance d = backing.query(s_int, mapping.ToInternal(t));
        const bool got_reach = d != kInfDistance && d <= bound;
        const bool want_reach = truth[t] != kInfDistance && truth[t] <= bound;
        ASSERT_EQ(got_reach, want_reach)
            << backing.name << " REACH(" << s << ", " << t << ", k=" << bound
            << ")";
      }
    }

    // PATH: weight sum == DIST and every consecutive pair is an arc
    // (PathLength returns kInfDistance otherwise); NotFound iff
    // unreachable.
    for (int j = 0; j < 24; ++j) {
      const VertexId t = static_cast<VertexId>(rng.Below(n));
      auto path = querier->ShortestPath(s, t);
      if (truth[t] == kInfDistance) {
        ASSERT_FALSE(path.ok()) << "PATH(" << s << ", " << t
                                << ") found a path to an unreachable vertex";
        ASSERT_TRUE(path.status().IsNotFound()) << path.status();
        continue;
      }
      ASSERT_TRUE(path.ok()) << "PATH(" << s << ", " << t
                             << "): " << path.status();
      ASSERT_EQ(PathLength(*graph, *path), truth[t])
          << "PATH(" << s << ", " << t << ") is not a shortest path";
      ASSERT_EQ(path->front(), s);
      ASSERT_EQ(path->back(), t);
    }
  }
}

TEST(OracleCrossCheckTest, VerbsUndirectedUnweighted) {
  VerbOracleSweep(GlpGraph(300, 4.0, /*seed=*/71), /*seed=*/81);
}

TEST(OracleCrossCheckTest, VerbsUndirectedWeighted) {
  EdgeList edges = GlpGraph(250, 3.0, /*seed=*/72);
  AssignUniformWeights(&edges, 1, 9, /*seed=*/73);
  VerbOracleSweep(edges, /*seed=*/82);
}

TEST(OracleCrossCheckTest, VerbsDirectedUnweighted) {
  GlpOptions options;
  options.num_vertices = 300;
  options.target_avg_degree = 4.0;
  options.seed = 74;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  VerbOracleSweep(*edges, /*seed=*/83);
}

TEST(OracleCrossCheckTest, VerbsDirectedWeighted) {
  GlpOptions options;
  options.num_vertices = 250;
  options.target_avg_degree = 3.0;
  options.seed = 75;
  auto edges = GenerateDirectedGlp(options);
  ASSERT_TRUE(edges.ok()) << edges.status();
  AssignUniformWeights(&*edges, 1, 9, /*seed=*/76);
  VerbOracleSweep(*edges, /*seed=*/84);
}

// Different construction strategies must produce identical answers;
// anchor each against the same BA graph's ground truth.
TEST(OracleCrossCheckTest, BuildModesAgree) {
  const EdgeList edges = BaGraph(300, 2, /*seed=*/18);
  auto graph = CsrGraph::FromEdgeList(edges);
  ASSERT_TRUE(graph.ok()) << graph.status();

  std::vector<HopDbIndex> indexes;
  for (BuildMode mode : {BuildMode::kHybrid, BuildMode::kHopStepping,
                         BuildMode::kHopDoubling}) {
    HopDbOptions options;
    options.build.mode = mode;
    auto index = HopDbIndex::Build(*graph, options);
    ASSERT_TRUE(index.ok()) << index.status();
    indexes.push_back(std::move(index).value());
  }

  const VertexId n = graph->num_vertices();
  Rng rng(26);
  for (VertexId i = 0; i < kSampleSources; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*graph, s);
    for (VertexId t = 0; t < n; ++t) {
      for (const HopDbIndex& index : indexes) {
        ASSERT_EQ(index.Query(s, t), truth[t])
            << "mode mismatch at (" << s << ", " << t << ")";
      }
    }
  }
}

}  // namespace
}  // namespace hopdb
