// Nearest neighbors and actual shortest paths on a directed web graph.
//
// Two post-paper capabilities layered on the 2-hop index:
//   * KnnEngine (query/knn.h): the k closest pages reachable from a seed
//     page, in exact distance order, without touching the graph.
//   * HopDbPathQuerier (hopdb.h): the actual link chain realizing a
//     distance, reconstructed from the index plus the graph — no parent
//     pointers stored.
//
//   $ ./knn_paths [--n 15000] [--k 12]

#include <cstdio>
#include <vector>

#include "gen/glp.h"
#include "hopdb.h"
#include "query/knn.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace hopdb;

  CliFlags flags;
  flags.Define("n", "15000", "web graph size (pages)");
  flags.Define("k", "12", "nearest pages to report");
  flags.Define("seed", "7", "graph seed");
  flags.Parse(argc, argv).CheckOK();

  // 1. A directed scale-free "web graph" and its index.
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(flags.GetUint("n"));
  glp.target_avg_degree = 6;
  glp.seed = flags.GetUint("seed");
  EdgeList edges = GenerateDirectedGlp(glp).ValueOrDie();
  CsrGraph graph = CsrGraph::FromEdgeList(edges).ValueOrDie();
  HopDbIndex index = HopDbIndex::Build(graph).ValueOrDie();
  std::printf("web graph: %u pages, %llu links, index %.1f entries/page\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              index.AvgLabelSize());

  // 2. k nearest pages from a seed (forward = following links). The kNN
  //    engine speaks internal ids; translate at the boundary.
  const VertexId seed_page = 1234 % graph.num_vertices();
  KnnEngine knn(index.label_index(), KnnEngine::Direction::kForward);
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k"));
  const auto nearest =
      knn.Query(index.ranking().ToInternal(seed_page), k);
  std::printf("\n%u pages closest to page %u by link distance:\n",
              static_cast<uint32_t>(nearest.size()), seed_page);
  for (const auto& nb : nearest) {
    std::printf("  page %-8u dist %u\n",
                index.ranking().ToOriginal(nb.vertex), nb.dist);
  }

  // 3. Reconstruct an actual link chain: pick the page with the LARGEST
  //    finite distance from the seed (a random sample suffices) so the
  //    chain is interesting, then extract it.
  Rng rng(DeriveSeed(flags.GetUint("seed"), 2));
  VertexId far_page = kInvalidVertex;
  Distance far_dist = 0;
  for (int i = 0; i < 400; ++i) {
    const VertexId candidate =
        static_cast<VertexId>(rng.Below(graph.num_vertices()));
    const Distance d = index.Query(seed_page, candidate);
    if (d != kInfDistance && d > far_dist) {
      far_dist = d;
      far_page = candidate;
    }
  }
  if (far_page != kInvalidVertex) {
    HopDbPathQuerier paths =
        HopDbPathQuerier::Create(index, graph).ValueOrDie();
    const std::vector<VertexId> chain =
        paths.ShortestPath(seed_page, far_page).ValueOrDie();
    std::printf("\nlink chain %u -> %u (%zu hops):\n  ", seed_page,
                far_page, chain.size() - 1);
    for (size_t i = 0; i < chain.size(); ++i) {
      std::printf("%u%s", chain[i], i + 1 < chain.size() ? " -> " : "\n");
    }
    std::printf("first hop toward %u: %u\n", far_page,
                paths.FirstHop(seed_page, far_page));
  }

  // 4. Backward kNN: the pages that most quickly REACH the seed —
  //    "who funnels traffic here" on a directed graph.
  KnnEngine reverse(index.label_index(), KnnEngine::Direction::kBackward);
  const auto reaching =
      reverse.Query(index.ranking().ToInternal(seed_page), 5);
  std::printf("\n5 pages that reach page %u fastest:\n", seed_page);
  for (const auto& nb : reaching) {
    std::printf("  page %-8u dist %u\n",
                index.ranking().ToOriginal(nb.vertex), nb.dist);
  }
  return 0;
}
