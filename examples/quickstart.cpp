// Quickstart: build a HopDb index over a small social-style graph and
// answer point-to-point distance queries, then persist and reload it.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API (hopdb.h).

#include <cstdio>

#include "hopdb.h"
#include "io/temp_dir.h"

int main() {
  using namespace hopdb;

  // 1. Describe the graph as an edge list. Vertices are dense 0-based
  //    ids; the graph here is undirected and unweighted.
  EdgeList edges(0, /*directed=*/false);
  // A tiny "two communities bridged by a hub" social network:
  //        0 - 1, 0 - 2, 1 - 2        (community A: triangle)
  //        5 - 6, 5 - 7, 6 - 7        (community B: triangle)
  //        0 - 4, 4 - 5               (4 bridges the communities)
  //        3 - 4                      (3 hangs off the bridge)
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 2);
  edges.Add(5, 6);
  edges.Add(5, 7);
  edges.Add(6, 7);
  edges.Add(0, 4);
  edges.Add(4, 5);
  edges.Add(3, 4);

  // 2. Build the index. Defaults follow the paper: degree ranking and the
  //    Hybrid Hop-Stepping/Hop-Doubling construction with pruning.
  auto index = HopDbIndex::Build(edges);
  index.status().CheckOK();

  // 3. Query exact distances. kInfDistance marks unreachable pairs.
  struct {
    VertexId s, t;
  } queries[] = {{1, 7}, {2, 3}, {0, 5}, {3, 6}, {7, 7}};
  std::printf("point-to-point distances:\n");
  for (auto [s, t] : queries) {
    Distance d = index->Query(s, t);
    if (d == kInfDistance) {
      std::printf("  dist(%u, %u) = unreachable\n", s, t);
    } else {
      std::printf("  dist(%u, %u) = %u\n", s, t, d);
    }
  }

  // 4. Inspect the index: the whole graph is covered by a few label
  //    entries pivoted on the high-degree vertices.
  std::printf("\nindex: %u vertices, %.1f label entries/vertex, %llu bytes "
              "on disk\n",
              index->num_vertices(), index->AvgLabelSize(),
              static_cast<unsigned long long>(index->PaperSizeBytes()));
  std::printf("built in %u rule iterations\n",
              index->build_stats().num_rule_iterations);

  // 5. Persist and reload.
  auto dir = TempDir::Create("quickstart");
  dir.status().CheckOK();
  std::string path = dir->File("social.hopdb");
  index->Save(path).CheckOK();
  auto reloaded = HopDbIndex::Load(path);
  reloaded.status().CheckOK();
  std::printf("\nreloaded from %s: dist(1, 7) = %u (same as before: %u)\n",
              path.c_str(), reloaded->Query(1, 7), index->Query(1, 7));
  return 0;
}
