// Directed-graph querying: hyperlink-style asymmetric distances on a
// simulated web crawl (one of the paper's motivating applications: page
// similarity on web graphs).
//
// Demonstrates the directed API surface: Lin/Lout labels, asymmetric
// dist(u,v) vs dist(v,u), and a simple distance-based page-similarity
// measure sim(p,q) = 1 / (1 + dist(p,q) + dist(q,p)).
//
//   $ ./web_directed [--pages 20000] [--avg_links 10] [--seed 3]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/glp.h"
#include "hopdb.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopdb;
  CliFlags flags;
  flags.Define("pages", "20000", "number of pages in the simulated crawl");
  flags.Define("avg_links", "10", "average out-links per page");
  flags.Define("seed", "3", "generator seed");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("web_directed").c_str());
    return 0;
  }

  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(flags.GetUint("pages"));
  glp.target_avg_degree = flags.GetDouble("avg_links");
  glp.seed = flags.GetUint("seed");
  auto edges = GenerateDirectedGlp(glp, /*reciprocal=*/0.25);
  edges.status().CheckOK();

  Stopwatch build_watch;
  auto index = HopDbIndex::Build(*edges);
  index.status().CheckOK();
  std::printf("web graph: %u pages, %zu links; index built in %s\n",
              index->num_vertices(), edges->num_edges(),
              HumanDuration(build_watch.Seconds()).c_str());
  std::printf("directed index: Lin+Lout, %.1f entries/page, %s\n\n",
              index->AvgLabelSize(),
              HumanBytes(index->PaperSizeBytes()).c_str());

  // Asymmetry: link distance is not symmetric on the web.
  std::printf("asymmetric link distances:\n");
  uint64_t asymmetric = 0, measured = 0;
  for (VertexId p = 100; p < 120; ++p) {
    VertexId q = p + 1000;
    Distance fwd = index->Query(p, q);
    Distance bwd = index->Query(q, p);
    ++measured;
    if (fwd != bwd) ++asymmetric;
    if (p < 105) {
      auto show = [](Distance d) {
        return d == kInfDistance ? std::string("inf") : std::to_string(d);
      };
      std::printf("  dist(%u -> %u) = %s, dist(%u -> %u) = %s\n", p, q,
                  show(fwd).c_str(), q, p, show(bwd).c_str());
    }
  }
  std::printf("  ... %llu of %llu sampled pairs are asymmetric\n\n",
              static_cast<unsigned long long>(asymmetric),
              static_cast<unsigned long long>(measured));

  // Page similarity for a seed page: rank candidate pages by round-trip
  // link distance.
  const VertexId seed_page = 42;
  struct Scored {
    VertexId page;
    double similarity;
  };
  std::vector<Scored> scored;
  for (VertexId q = 0; q < index->num_vertices(); q += 97) {
    if (q == seed_page) continue;
    Distance fwd = index->Query(seed_page, q);
    Distance bwd = index->Query(q, seed_page);
    if (fwd == kInfDistance || bwd == kInfDistance) continue;
    scored.push_back({q, 1.0 / (1.0 + fwd + bwd)});
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min<size_t>(5, scored.size()),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.similarity > b.similarity;
                    });
  std::printf("pages most similar to page %u (by round-trip distance):\n",
              seed_page);
  for (size_t i = 0; i < std::min<size_t>(5, scored.size()); ++i) {
    std::printf("  page %-7u similarity %.3f\n", scored[i].page,
                scored[i].similarity);
  }
  return 0;
}
