// Social-network analytics on top of HopDb: closeness centrality and
// k-hop reach for a scale-free "who-follows-whom" community — the kind
// of workload the paper's introduction motivates (network analysis,
// locating influential users).
//
// Millions of distance queries against one prebuilt index replace
// per-query BFS: this program issues |candidates| x |samples| queries
// through the label index in milliseconds.
//
//   $ ./social_influence [--users 30000] [--avg_friends 8] [--seed 1]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/glp.h"
#include "graph/stats.h"
#include "hopdb.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopdb;
  CliFlags flags;
  flags.Define("users", "30000", "number of users in the simulated network");
  flags.Define("avg_friends", "8", "average friendships per user");
  flags.Define("seed", "1", "generator seed");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("social_influence").c_str());
    return 0;
  }

  // --- simulate the social network (GLP: the paper's scale-free model).
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(flags.GetUint("users"));
  glp.target_avg_degree = flags.GetDouble("avg_friends");
  glp.seed = flags.GetUint("seed");
  auto edges = GenerateGlp(glp);
  edges.status().CheckOK();
  auto graph = CsrGraph::FromEdgeList(*edges);
  graph.status().CheckOK();
  GraphStats stats = ComputeGraphStats(*graph);
  std::printf("network: %s\n", stats.ToString().c_str());

  // --- build the distance index once.
  Stopwatch build_watch;
  auto index = HopDbIndex::Build(*graph);
  index.status().CheckOK();
  std::printf("index built in %s (%.1f entries/user, %s)\n\n",
              HumanDuration(build_watch.Seconds()).c_str(),
              index->AvgLabelSize(),
              HumanBytes(index->PaperSizeBytes()).c_str());

  // --- closeness centrality of the 12 highest-degree users, estimated
  //     over a fixed random sample of targets (pure index queries).
  std::vector<VertexId> candidates(graph->num_vertices());
  for (VertexId v = 0; v < graph->num_vertices(); ++v) candidates[v] = v;
  std::sort(candidates.begin(), candidates.end(), [&](VertexId a, VertexId b) {
    return graph->Degree(a) > graph->Degree(b);
  });
  candidates.resize(12);

  const size_t kSamples = 2000;
  Rng rng(7);
  std::vector<VertexId> sample;
  for (size_t i = 0; i < kSamples; ++i) {
    sample.push_back(static_cast<VertexId>(rng.Below(graph->num_vertices())));
  }

  Stopwatch query_watch;
  std::printf("closeness centrality of the top-degree users "
              "(%zu samples each):\n", kSamples);
  std::printf("  %-8s %-8s %-10s %-10s\n", "user", "degree", "closeness",
              "reach<=2");
  for (VertexId user : candidates) {
    double sum = 0;
    uint64_t reached = 0, within2 = 0;
    for (VertexId target : sample) {
      Distance d = index->Query(user, target);
      if (d == kInfDistance) continue;
      sum += d;
      ++reached;
      if (d <= 2) ++within2;
    }
    double closeness = reached == 0 ? 0 : static_cast<double>(reached) / sum;
    std::printf("  %-8u %-8u %-10.4f %5.1f%%\n", user, graph->Degree(user),
                closeness,
                100.0 * static_cast<double>(within2) / kSamples);
  }
  double total_queries =
      static_cast<double>(candidates.size()) * static_cast<double>(kSamples);
  std::printf("\n%savg %.2fus per distance query (%.0f queries)\n",
              "", query_watch.Seconds() * 1e6 / total_queries,
              total_queries);
  std::printf(
      "\nThe hub users reach most of the network within 2 hops — the\n"
      "hitting-set property (paper Section 2.2) that makes the index "
      "small.\n");
  return 0;
}
