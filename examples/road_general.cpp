// General (non-scale-free) graphs, Section 7: degree ranking is useless
// on road-like networks — there are no hubs — but the algorithms accept
// any total order. This example builds a weighted grid "road network"
// and compares degree ranking against a simple betweenness-flavoured
// custom order (distance-to-center heuristic): the custom order produces
// a markedly smaller index, illustrating why Section 7 says a good
// general-graph ranking "should hit a large number of shortest paths".
//
//   $ ./road_general [--rows 40] [--cols 40] [--seed 5]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "gen/small_graphs.h"
#include "gen/weights.h"
#include "hopdb.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopdb;
  CliFlags flags;
  flags.Define("rows", "40", "grid rows");
  flags.Define("cols", "40", "grid columns");
  flags.Define("seed", "5", "weight seed");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("road_general").c_str());
    return 0;
  }
  const VertexId rows = static_cast<VertexId>(flags.GetUint("rows"));
  const VertexId cols = static_cast<VertexId>(flags.GetUint("cols"));

  EdgeList road = GridGraph(rows, cols);
  AssignUniformWeights(&road, 1, 20, flags.GetUint("seed"));
  std::printf("road network: %u intersections, %zu road segments "
              "(weighted grid)\n\n", road.num_vertices(), road.num_edges());

  auto report = [](const char* name, const HopDbIndex& index,
                   double seconds) {
    std::printf("  %-28s %8.1f entries/vertex  %10s  built in %s\n", name,
                index.AvgLabelSize(),
                HumanBytes(index.PaperSizeBytes()).c_str(),
                HumanDuration(seconds).c_str());
  };

  // --- degree ranking (the paper's scale-free default) flounders: every
  // interior intersection has degree 4.
  {
    Stopwatch watch;
    auto index = HopDbIndex::Build(road);
    index.status().CheckOK();
    report("degree ranking", *index, watch.Seconds());
  }

  // --- custom order: center-out. Central vertices hit many shortest
  // paths on a grid, so rank them highest (Section 7's guidance).
  {
    HopDbOptions opts;
    opts.ranking = HopDbOptions::Ranking::kCustom;
    std::vector<VertexId> order(road.num_vertices());
    std::iota(order.begin(), order.end(), 0u);
    auto centrality = [&](VertexId v) {
      // Negated product of distances to the four borders — high in the
      // middle, zero at the boundary.
      int64_t r = v / cols, c = v % cols;
      int64_t dr = std::min<int64_t>(r, rows - 1 - r) + 1;
      int64_t dc = std::min<int64_t>(c, cols - 1 - c) + 1;
      return dr * dc;
    };
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      int64_t ca = centrality(a), cb = centrality(b);
      if (ca != cb) return ca > cb;
      return a < b;
    });
    opts.custom_order = order;
    Stopwatch watch;
    auto index = HopDbIndex::Build(road, opts);
    index.status().CheckOK();
    report("center-out custom ranking", *index, watch.Seconds());

    // The index answers routing queries exactly.
    VertexId nw = 0;                        // north-west corner
    VertexId se = rows * cols - 1;          // south-east corner
    VertexId center = (rows / 2) * cols + cols / 2;
    std::printf("\n  travel cost NW->SE: %u\n", index->Query(nw, se));
    std::printf("  travel cost NW->center: %u, center->SE: %u\n",
                index->Query(nw, center), index->Query(center, se));
    std::printf(
        "  (triangle inequality check: %u <= %u)\n", index->Query(nw, se),
        index->Query(nw, center) + index->Query(center, se));
  }

  std::printf(
      "\nTakeaway (Section 7): the algorithms work with any total order;\n"
      "on graphs without hubs, the ordering choice drives the index size.\n");
  return 0;
}
