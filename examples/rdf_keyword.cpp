// Keyword search over an RDF-style entity graph (the paper's intro cites
// "keyword search on RDF graphs [21]" as a driving application).
//
// Model: each keyword matches a set of entities. An answer is a root
// entity that is close to at least one match of EVERY keyword; its score
// is the sum of those distances (the r-clique / group-Steiner proxy used
// by keyword-search systems). With a distance index this is pure lookup
// work: one one-to-many bucket query per candidate root replaces a
// multi-source graph traversal per query.
//
//   $ ./rdf_keyword [--n 12000] [--keywords 3] [--matches 8]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/glp.h"
#include "hopdb.h"
#include "query/batch.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopdb;

  CliFlags flags;
  flags.Define("n", "12000", "entity graph size");
  flags.Define("keywords", "3", "number of query keywords");
  flags.Define("matches", "8", "entities matching each keyword");
  flags.Define("seed", "11", "graph + keyword seed");
  flags.Parse(argc, argv).CheckOK();

  // 1. A directed scale-free "RDF graph" (entities + links) and its index.
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(flags.GetUint("n"));
  glp.target_avg_degree = 7;
  glp.seed = flags.GetUint("seed");
  EdgeList edges = GenerateDirectedGlp(glp).ValueOrDie();
  HopDbIndex index = HopDbIndex::Build(edges).ValueOrDie();
  const VertexId n = index.num_vertices();
  std::printf("entity graph: %u entities, %zu links\n", n,
              edges.edges().size());

  // 2. Simulated keyword matches: random entity sets.
  const uint32_t num_keywords =
      static_cast<uint32_t>(flags.GetUint("keywords"));
  const uint32_t matches = static_cast<uint32_t>(flags.GetUint("matches"));
  Rng rng(DeriveSeed(flags.GetUint("seed"), 3));
  std::vector<std::vector<VertexId>> keyword_sets(num_keywords);
  std::vector<VertexId> all_targets;  // internal ids, flattened
  for (auto& set : keyword_sets) {
    for (uint32_t i = 0; i < matches; ++i) {
      const VertexId entity = static_cast<VertexId>(rng.Below(n));
      set.push_back(entity);
      all_targets.push_back(index.ranking().ToInternal(entity));
    }
  }
  std::printf("query: %u keywords x %u matching entities\n", num_keywords,
              matches);

  // 3. Score every entity as an answer root: sum over keywords of the
  //    distance to the keyword's nearest match (root -> match direction).
  OneToManyEngine engine(index.label_index(), all_targets);
  Stopwatch watch;
  struct Answer {
    uint64_t score;
    VertexId root;
  };
  std::vector<Answer> answers;
  for (VertexId internal = 0; internal < n; ++internal) {
    const std::vector<Distance> row = engine.Query(internal);
    uint64_t score = 0;
    bool covers_all = true;
    for (uint32_t k = 0; k < num_keywords && covers_all; ++k) {
      Distance nearest = kInfDistance;
      for (uint32_t i = 0; i < matches; ++i) {
        nearest = std::min(nearest, row[k * matches + i]);
      }
      if (nearest == kInfDistance) {
        covers_all = false;
      } else {
        score += nearest;
      }
    }
    if (covers_all) {
      answers.push_back({score, index.ranking().ToOriginal(internal)});
    }
  }
  const double seconds = watch.Seconds();
  std::printf(
      "scored %zu/%u candidate roots in %.2f s (%.1f us per root)\n",
      answers.size(), n, seconds, seconds * 1e6 / n);

  // 4. The best answers.
  const size_t top = std::min<size_t>(5, answers.size());
  std::partial_sort(answers.begin(), answers.begin() + top, answers.end(),
                    [](const Answer& a, const Answer& b) {
                      return a.score < b.score;
                    });
  std::printf("\ntop %zu answer roots (sum of keyword distances):\n", top);
  for (size_t i = 0; i < top; ++i) {
    std::printf("  #%zu  entity %-8u total distance %llu\n", i + 1,
                answers[i].root,
                static_cast<unsigned long long>(answers[i].score));
    // Provenance: which match realizes each keyword.
    for (uint32_t k = 0; k < num_keywords; ++k) {
      VertexId best_match = kInvalidVertex;
      Distance best_d = kInfDistance;
      for (const VertexId m : keyword_sets[k]) {
        const Distance d = index.Query(answers[i].root, m);
        if (d < best_d) {
          best_d = d;
          best_match = m;
        }
      }
      std::printf("       keyword %u -> entity %u (dist %u)\n", k,
                  best_match, best_d);
    }
  }
  return 0;
}
