// Centrality analysis on a social network via batch index queries.
//
// The paper's introduction motivates distance querying as a building block
// for "network analysis such as betweenness centrality computation" and
// "locating influential users in the network". This example does exactly
// that: harmonic centrality — sum over reachable targets of 1/dist —
// estimated from a sampled target set, evaluated for every vertex with the
// one-to-many bucket engine (query/batch.h). The bucket engine turns each
// per-vertex evaluation into a scan of the source label against the
// pre-bucketed target labels, orders of magnitude cheaper than one BFS per
// vertex.
//
//   $ ./centrality [--n 20000] [--targets 256] [--top 10]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/glp.h"
#include "hopdb.h"
#include "query/batch.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopdb;

  CliFlags flags;
  flags.Define("n", "20000", "social network size (vertices)");
  flags.Define("targets", "256", "sampled targets per centrality estimate");
  flags.Define("top", "10", "how many influencers to report");
  flags.Define("seed", "42", "graph + sampling seed");
  flags.Parse(argc, argv).CheckOK();

  // 1. A scale-free "social network" (GLP: the generator the paper's
  //    synthetic evaluation uses).
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(flags.GetUint("n"));
  glp.target_avg_degree = 8;
  glp.seed = flags.GetUint("seed");
  EdgeList edges = GenerateGlp(glp).ValueOrDie();
  std::printf("social graph: %u members, %zu friendships\n",
              edges.num_vertices(), edges.edges().size());

  // 2. Index it.
  Stopwatch build_watch;
  HopDbIndex index = HopDbIndex::Build(edges).ValueOrDie();
  std::printf("index built in %.2f s (%.1f entries/member)\n",
              build_watch.Seconds(), index.AvgLabelSize());

  // 3. Sample a target panel and bucket its labels once. The batch
  //    engines speak internal (rank) ids; translate through the index's
  //    rank mapping.
  const VertexId n = index.num_vertices();
  const uint32_t num_targets =
      static_cast<uint32_t>(flags.GetUint("targets"));
  Rng rng(DeriveSeed(flags.GetUint("seed"), 1));
  std::vector<VertexId> targets;
  targets.reserve(num_targets);
  for (uint32_t i = 0; i < num_targets; ++i) {
    targets.push_back(index.ranking().ToInternal(
        static_cast<VertexId>(rng.Below(n))));
  }
  OneToManyEngine engine(index.label_index(), targets);

  // 4. Harmonic centrality estimate for every member.
  Stopwatch sweep_watch;
  std::vector<std::pair<double, VertexId>> scored;
  scored.reserve(n);
  for (VertexId internal = 0; internal < n; ++internal) {
    const std::vector<Distance> row = engine.Query(internal);
    double harmonic = 0;
    for (const Distance d : row) {
      if (d != kInfDistance && d > 0) harmonic += 1.0 / d;
    }
    scored.emplace_back(harmonic, index.ranking().ToOriginal(internal));
  }
  const double sweep_seconds = sweep_watch.Seconds();
  std::printf(
      "harmonic centrality for all %u members against %u targets: %.2f s "
      "(%.1f us per member)\n",
      n, num_targets, sweep_seconds, sweep_seconds * 1e6 / n);

  // 5. The influencers.
  const size_t top = std::min<size_t>(flags.GetUint("top"), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::printf("\ntop %zu influencers (harmonic centrality):\n", top);
  for (size_t i = 0; i < top; ++i) {
    std::printf("  #%zu  member %-8u score %.1f\n", i + 1,
                scored[i].second, scored[i].first);
  }
  return 0;
}
