// Table 8 reproduction: indexing time and iteration counts for pure
// Hop-Doubling, pure Hop-Stepping, and the Hybrid default.
//
// Expected shape vs the paper: Doubling explodes (DNF via candidate cap /
// budget) or trails badly on the bigger graphs because early iterations
// multiply candidate volume; Stepping finishes everywhere but needs more
// iterations on high-diameter graphs; Hybrid ties or wins everywhere.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

struct StrategyResult {
  Status status = Status::OK();
  double seconds = 0;
  uint32_t iterations = 0;
};

StrategyResult RunStrategy(const CsrGraph& g, BuildMode mode,
                           double budget) {
  BuildOptions opts;
  opts.mode = mode;
  opts.time_budget_seconds = budget;
  // The paper's doubling DNFs are candidate explosions; cap the volume so
  // the bench fails fast instead of swapping.
  opts.max_candidates_per_iteration = 300'000'000;
  StrategyResult r;
  auto out = BuildHopLabeling(g, opts);
  r.status = out.status();
  if (out.ok()) {
    r.seconds = out->stats.total_seconds;
    r.iterations = out->stats.num_rule_iterations;
  }
  return r;
}

std::string Iters(const StrategyResult& r) {
  return r.status.ok() ? std::to_string(r.iterations) : AsciiTable::Dash();
}

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "table8_strategies: Table 8 — Hop-Doubling vs "
                    "Hop-Stepping vs Hybrid",
                    &env)) {
    return 0;
  }
  std::printf("Table 8: comparing Hop-Doubling, Hop-Stepping, and Hybrid\n\n");
  AsciiTable table({"Graph", "time s Double", "time s Step", "time s Hybrid",
                    "iters Double", "iters Step", "iters Hybrid"});
  for (const DatasetSpec& spec : SelectDatasets(env)) {
    auto prepared = PrepareDataset(spec, env);
    if (!prepared.ok()) {
      std::fprintf(stderr, "skip %s: %s\n", spec.name.c_str(),
                   prepared.status().ToString().c_str());
      continue;
    }
    const CsrGraph& g = prepared->ranked;
    StrategyResult dbl = RunStrategy(g, BuildMode::kHopDoubling,
                                     env.budget_seconds);
    StrategyResult step = RunStrategy(g, BuildMode::kHopStepping,
                                      env.budget_seconds);
    StrategyResult hybrid = RunStrategy(g, BuildMode::kHybrid,
                                        env.budget_seconds);
    table.AddRow({spec.name, SecondsOrDash(dbl.status, dbl.seconds),
                  SecondsOrDash(step.status, step.seconds),
                  SecondsOrDash(hybrid.status, hybrid.seconds), Iters(dbl),
                  Iters(step), Iters(hybrid)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: Hybrid <= Step <= Double in time (Double\n"
      "DNFs on large inputs); Hybrid needs no more iterations than Step.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
