// Table 7 reproduction: evidence for the small-hitting-set assumptions —
// number of iterations, average label entries per vertex, and the
// percentage of top-ranked vertices needed to cover 70/80/90% of all
// label entries.
//
// Expected shape vs the paper: avg |label| small and flat relative to
// |V| (tens to hundreds), and fractions well under a few percent for all
// scale-free datasets.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "table7_hitting_set: Table 7 — iterations, avg |label|, "
                    "top-vertex coverage",
                    &env)) {
    return 0;
  }
  std::printf(
      "Table 7: small hub dimension / hitting-set support (HopDb hybrid)\n\n");
  AsciiTable table({"Graph", "iterations", "avg |label|", "top 70%",
                    "top 80%", "top 90%"});
  for (const DatasetSpec& spec : SelectDatasets(env)) {
    auto prepared = PrepareDataset(spec, env);
    if (!prepared.ok()) {
      std::fprintf(stderr, "skip %s: %s\n", spec.name.c_str(),
                   prepared.status().ToString().c_str());
      continue;
    }
    BuildOptions opts;
    opts.time_budget_seconds = env.budget_seconds;
    auto out = BuildHopLabeling(prepared->ranked, opts);
    if (!out.ok()) {
      table.AddRow({spec.name, AsciiTable::Dash(), AsciiTable::Dash(),
                    AsciiTable::Dash(), AsciiTable::Dash(),
                    AsciiTable::Dash()});
      continue;
    }
    auto per_pivot = out->index.EntriesPerPivot();
    table.AddRow({spec.name, std::to_string(out->stats.num_rule_iterations),
                  FormatDouble(out->index.AvgLabelSize(), 1),
                  FormatDouble(PercentForCoverage(per_pivot, 0.70), 2) + "%",
                  FormatDouble(PercentForCoverage(per_pivot, 0.80), 2) + "%",
                  FormatDouble(PercentForCoverage(per_pivot, 0.90), 2) + "%"});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: avg |label| is tiny relative to |V| and a\n"
      "sub-percent to few-percent sliver of top vertices covers 70-90%%\n"
      "of all entries (paper: 0.01%%-7.6%% across its datasets).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
