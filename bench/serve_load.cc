// Open-loop load generator for the distance server, sweeping connection
// tiers against an in-process DistanceServer over real loopback TCP.
//
// Open loop means arrivals are scheduled by a clock, not by responses:
// every request has an injection deadline drawn from a fixed aggregate
// rate, is pipelined onto its connection whether or not earlier answers
// have landed, and its latency is measured from the SCHEDULED time — so
// queueing delay shows up in p99 instead of silently throttling the
// generator (the coordinated-omission trap of closed-loop harnesses).
//
// One epoll thread drives every client connection (mirroring the
// server's own I/O model); each tier opens its connections, runs the
// same schedule, and reports independently:
//
//   {"tiers": [{"connections": 100, "qps": ..., "latency_us": {...},
//               "busy": ..., "errors_nonbusy": ...}, ...]}
//
// BUSY responses (admission-control shedding) are counted separately
// and are NOT failures; the process exits nonzero only on transport
// errors or non-BUSY error responses — the invariant CI gates on.
//
// Before the sweep, a paired tier-100 run measures the cost of the
// tracing layer: one server with --trace-sample-rate 0, one at the
// default rate, same schedule. The run fails (exit nonzero) when the
// sampled p99 exceeds the unsampled p99 by more than 1% plus a small
// absolute floor that absorbs loopback scheduling jitter — the
// "observability is effectively free" invariant CI gates on. The sweep
// itself runs with default sampling, and the per-stage (queue-wait /
// execute / write) histograms the server keeps for every request are
// reported in the JSON as "stages".
//
// A second paired run drives Zipfian degree-ranked traffic (the skewed
// source mix scale-free query logs actually show; --skew turns the same
// mix on for the sweep) at two servers differing only in the hot-hub
// cache, recording the client p99 and server execute p50 with the cache
// off vs on under "hot_hub_skew" in the JSON.
//
//   bench_serve_load            # full run, tiers 100,1000,4000
//   bench_serve_load --ci       # seconds-long CI mode, tiers 100,1000

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "hopdb.h"
#include "server/index_snapshot.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

struct TierResult {
  size_t connections = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t busy = 0;
  uint64_t errors_nonbusy = 0;  // transport + non-BUSY ERR responses
  double elapsed_seconds = 0;
  double qps = 0;
  double p50 = 0, p90 = 0, p99 = 0, max_us = 0;
};

// Zipfian vertex sampler over a degree-ranked order: rank r is drawn
// with probability ∝ 1/(r+1)^alpha, so the highest-degree vertices —
// the hubs whose labels the HotHubCache densifies — dominate the
// stream, the way query traffic concentrates on scale-free networks.
// Exact inverse-CDF sampling (binary search over the cumulative
// weights); no Zipf approximation needed at bench-scale |V|.
class ZipfSampler {
 public:
  ZipfSampler(std::vector<VertexId> degree_order, double alpha)
      : order_(std::move(degree_order)) {
    cdf_.reserve(order_.size());
    double total = 0;
    for (size_t rank = 0; rank < order_.size(); ++rank) {
      total += std::pow(static_cast<double>(rank + 1), -alpha);
      cdf_.push_back(total);
    }
  }

  bool empty() const { return order_.empty(); }

  VertexId Sample(Rng* rng) const {
    const double u = rng->NextDouble() * cdf_.back();
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return order_[std::min(rank, order_.size() - 1)];
  }

 private:
  std::vector<VertexId> order_;  // vertex ids, descending degree
  std::vector<double> cdf_;
};

/// Vertex ids sorted by descending degree in `edges` (ties by id, so
/// the order — and thus the whole skewed schedule — is deterministic).
std::vector<VertexId> DegreeOrder(const EdgeList& edges) {
  std::vector<uint64_t> degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    degree[e.src]++;
    degree[e.dst]++;
  }
  std::vector<VertexId> order(edges.num_vertices());
  for (VertexId v = 0; v < edges.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&degree](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  return order;
}

// One generator-side connection: pending output, buffered input, and
// the scheduled injection time of every request still awaiting its
// (in-order) response.
struct GenConn {
  int fd = -1;
  std::string out;
  size_t out_off = 0;
  std::string in;
  std::deque<double> scheduled_us;
  bool writable_armed = false;
};

class OpenLoopGenerator {
 public:
  /// `zipf` (may be null) switches source/target draws from the
  /// uniform + hot-pair mix to degree-ranked Zipfian sampling.
  OpenLoopGenerator(uint16_t port, bool v2, VertexId n, uint64_t seed,
                    double hot_fraction, uint32_t hot_pairs,
                    uint64_t batch_every, const ZipfSampler* zipf = nullptr)
      : port_(port), v2_(v2), n_(n), rng_(DeriveSeed(seed, 100)),
        hot_fraction_(hot_fraction), batch_every_(batch_every), zipf_(zipf) {
    Rng hot_rng(DeriveSeed(seed, 7));
    hot_.reserve(hot_pairs);
    for (uint32_t i = 0; i < hot_pairs; ++i) {
      hot_.emplace_back(static_cast<VertexId>(hot_rng.Below(n)),
                        static_cast<VertexId>(hot_rng.Below(n)));
    }
  }

  /// Runs one tier: `connections` sockets, `rate` aggregate requests/s
  /// for `seconds`, then a drain grace period. Returns the tier stats.
  TierResult RunTier(size_t connections, double rate, double seconds) {
    TierResult result;
    result.connections = connections;
    latencies_.clear();

    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      result.errors_nonbusy++;
      return result;
    }
    conns_.assign(connections, GenConn{});
    for (size_t i = 0; i < connections; ++i) {
      if (!OpenConn(&conns_[i])) {
        // Partial tiers still report; the error count flags the miss.
        result.errors_nonbusy++;
        conns_.resize(i);
        break;
      }
    }

    const double start_us = NowUs();
    const double stop_us = start_us + seconds * 1e6;
    const double interval_us = rate > 0 ? 1e6 / rate : 0;
    double next_send_us = start_us;
    uint64_t round_robin = 0;

    epoll_event events[256];
    while (!conns_.empty()) {
      const double now = NowUs();
      // Inject every request whose deadline has passed (open loop: we
      // never wait for responses to do this).
      while (interval_us > 0 && next_send_us <= now && now < stop_us) {
        GenConn& conn = conns_[round_robin++ % conns_.size()];
        if (conn.fd >= 0) {
          AppendRequest(&conn, next_send_us);
          result.sent++;
          FlushConn(&conn, &result);
        }
        next_send_us += interval_us;
      }
      const bool injecting = now < stop_us;
      if (!injecting && Outstanding() == 0) break;
      if (!injecting && now > stop_us + 3e6) break;  // drain grace over

      int timeout_ms = 1;
      if (injecting) {
        const double until = (next_send_us - NowUs()) / 1000.0;
        timeout_ms = until <= 0 ? 0 : static_cast<int>(std::min(until, 10.0));
      }
      const int ready = epoll_wait(epoll_fd_, events, 256, timeout_ms);
      for (int e = 0; e < ready; ++e) {
        GenConn* conn = static_cast<GenConn*>(events[e].data.ptr);
        if (conn->fd < 0) continue;
        if (events[e].events & EPOLLOUT) FlushConn(conn, &result);
        if (events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
          ReadConn(conn, &result);
        }
      }
    }
    result.elapsed_seconds = (NowUs() - start_us) / 1e6;

    for (GenConn& conn : conns_) {
      // Requests still unanswered at teardown are transport losses.
      result.errors_nonbusy += conn.scheduled_us.size();
      CloseConn(&conn);
    }
    conns_.clear();
    close(epoll_fd_);
    epoll_fd_ = -1;

    std::sort(latencies_.begin(), latencies_.end());
    result.received = latencies_.size();
    result.qps = result.elapsed_seconds > 0
                     ? static_cast<double>(result.received) /
                           result.elapsed_seconds
                     : 0;
    result.p50 = Percentile(latencies_, 50);
    result.p90 = Percentile(latencies_, 90);
    result.p99 = Percentile(latencies_, 99);
    result.max_us = latencies_.empty() ? 0 : latencies_.back();
    return result;
  }

 private:
  bool OpenConn(GenConn* conn) {
    conn->fd = socket(AF_INET, SOCK_STREAM, 0);
    if (conn->fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(conn->fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
      close(conn->fd);
      conn->fd = -1;
      return false;
    }
    int one = 1;
    setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fcntl(conn->fd, F_SETFL, fcntl(conn->fd, F_GETFL, 0) | O_NONBLOCK);
    if (v2_) conn->out.append(kV2Magic, sizeof(kV2Magic));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
      close(conn->fd);
      conn->fd = -1;
      return false;
    }
    return true;
  }

  void CloseConn(GenConn* conn) {
    if (conn->fd < 0) return;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    conn->fd = -1;
  }

  VertexId RandomVertex() {
    if (zipf_ != nullptr && !zipf_->empty()) return zipf_->Sample(&rng_);
    return static_cast<VertexId>(rng_.Below(n_));
  }

  void AppendRequest(GenConn* conn, double scheduled_us) {
    Request request;
    VertexId s, t;
    if (zipf_ != nullptr && !zipf_->empty()) {
      // Skew mode: every endpoint is a degree-ranked Zipf draw; the
      // artificial hot-pair set is irrelevant (skew IS the hotness).
      s = RandomVertex();
      t = RandomVertex();
    } else if (static_cast<double>(rng_.Below(1000)) <
               hot_fraction_ * 1000.0) {
      const auto& pair = hot_[rng_.Below(hot_.size())];
      s = pair.first;
      t = pair.second;
    } else {
      s = static_cast<VertexId>(rng_.Below(n_));
      t = static_cast<VertexId>(rng_.Below(n_));
    }
    if (batch_every_ > 0 && ++request_counter_ % batch_every_ == 0) {
      request.kind = RequestKind::kBatch;
      request.src = s;
      for (int j = 0; j < 8; ++j) {
        request.targets.push_back(RandomVertex());
      }
    } else {
      request.kind = RequestKind::kDist;
      request.src = s;
      request.targets.push_back(t);
    }
    if (v2_) {
      EncodeRequestV2(request, &conn->out);
    } else {
      conn->out += FormatRequestV1(request);
      conn->out += '\n';
    }
    conn->scheduled_us.push_back(scheduled_us);
  }

  void FlushConn(GenConn* conn, TierResult* result) {
    while (conn->out_off < conn->out.size()) {
      const ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ArmWritable(conn, true);
        return;
      }
      result->errors_nonbusy += conn->scheduled_us.size();
      conn->scheduled_us.clear();
      CloseConn(conn);
      return;
    }
    conn->out.clear();
    conn->out_off = 0;
    ArmWritable(conn, false);
  }

  void ArmWritable(GenConn* conn, bool want) {
    if (conn->writable_armed == want) return;
    conn->writable_armed = want;
    epoll_event ev{};
    ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.ptr = conn;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void ReadConn(GenConn* conn, TierResult* result) {
    char chunk[65536];
    while (conn->fd >= 0) {
      const ssize_t n = recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn->in.append(chunk, static_cast<size_t>(n));
        ParseResponses(conn, result);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF or error with requests outstanding: transport loss.
      result->errors_nonbusy += conn->scheduled_us.size();
      conn->scheduled_us.clear();
      CloseConn(conn);
      return;
    }
  }

  void ParseResponses(GenConn* conn, TierResult* result) {
    size_t off = 0;
    while (!conn->scheduled_us.empty()) {
      bool is_busy = false, is_err = false;
      if (v2_) {
        size_t consumed = 0;
        WireResponse response;
        std::string error;
        const FrameParse verdict =
            ParseResponseFrameV2(conn->in.data() + off, conn->in.size() - off,
                                 &consumed, &response, &error);
        if (verdict == FrameParse::kNeedMore) break;
        if (verdict == FrameParse::kError) {
          result->errors_nonbusy += conn->scheduled_us.size();
          conn->scheduled_us.clear();
          conn->in.clear();
          CloseConn(conn);
          return;
        }
        off += consumed;
        is_busy = response.status == WireStatus::kBusy;
        is_err = response.status == WireStatus::kErr;
      } else {
        const size_t newline = conn->in.find('\n', off);
        if (newline == std::string::npos) break;
        is_busy = conn->in.compare(off, 9, "ERR BUSY ") == 0;
        is_err = !is_busy && conn->in.compare(off, 4, "ERR ") == 0;
        off = newline + 1;
      }
      const double scheduled = conn->scheduled_us.front();
      conn->scheduled_us.pop_front();
      if (is_busy) {
        result->busy++;
      } else if (is_err) {
        result->errors_nonbusy++;
      }
      latencies_.push_back(NowUs() - scheduled);
    }
    if (off > 0) conn->in.erase(0, off);
  }

  size_t Outstanding() const {
    size_t total = 0;
    for (const GenConn& conn : conns_) total += conn.scheduled_us.size();
    return total;
  }

  const uint16_t port_;
  const bool v2_;
  const VertexId n_;
  Rng rng_;
  const double hot_fraction_;
  const uint64_t batch_every_;
  const ZipfSampler* zipf_;
  uint64_t request_counter_ = 0;
  std::vector<std::pair<VertexId, VertexId>> hot_;
  std::vector<GenConn> conns_;
  std::vector<double> latencies_;
  int epoll_fd_ = -1;
};

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("n", "2000", "graph vertices (GLP)");
  flags.Define("avg-degree", "6", "graph average degree");
  flags.Define("seed", "1", "graph + workload seed");
  flags.Define("tiers", "100,1000,4000",
               "comma-separated connection counts to sweep");
  flags.Define("rate", "5000", "aggregate injected requests/second");
  flags.Define("seconds", "4", "traffic duration per tier");
  flags.Define("protocol", "v1", "wire framing: v1 (lines) or v2 (binary)");
  flags.Define("workers", "0", "server worker threads (0 = all cores)");
  flags.Define("io-threads", "0", "server epoll threads (0 = auto)");
  flags.Define("cache", "65536", "server result-cache capacity (0 = off)");
  flags.Define("queue-capacity", "1024",
               "server work-queue bound (overflow sheds BUSY)");
  flags.Define("hot-fraction", "0.8",
               "share of requests drawn from the hot pair set");
  flags.Define("hot-pairs", "128", "size of the hot pair set");
  flags.Define("batch-every", "16",
               "every k-th request is a BATCH of 8 (0 = never)");
  flags.Define("skew", "0",
               "Zipf exponent for degree-ranked source/target draws in "
               "the tier sweep (0 = uniform + hot pairs)");
  flags.Define("hot-hub-k", "1024",
               "hot-hub cache size for the skew comparison pair "
               "(0 skips the pair)");
  flags.Define("out", "BENCH_serve.json", "machine-readable output path");
  flags.Define("ci", "false", "CI mode: small graph, short run, tiers "
                              "100,1000");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage("bench_serve_load — distance-server load "
                             "generator (open loop over TCP, tier sweep)");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const VertexId n = ci ? 600 : static_cast<VertexId>(flags.GetUint("n"));
  const double seconds = ci ? 1.0 : flags.GetDouble("seconds");
  const double rate = ci ? 2000.0 : flags.GetDouble("rate");
  const uint64_t seed = flags.GetUint("seed");
  const std::string protocol = flags.GetString("protocol");
  if (protocol != "v1" && protocol != "v2") {
    std::cerr << "--protocol must be v1 or v2\n";
    return 1;
  }
  const bool v2 = protocol == "v2";

  std::vector<size_t> tiers;
  {
    const std::string spec = ci ? "100,1000" : flags.GetString("tiers");
    for (const std::string& token : SplitString(spec, ',')) {
      uint64_t value = 0;
      if (!ParseUint64(TrimString(token), &value) || value == 0) {
        std::cerr << "bad --tiers entry '" << token << "'\n";
        return 1;
      }
      tiers.push_back(value);
    }
  }

  // Both ends of every connection live in this process: each tier costs
  // 2 fds per connection. Lift the soft limit, then clamp.
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
    const size_t max_conns = limit.rlim_cur == RLIM_INFINITY
                                 ? SIZE_MAX
                                 : (static_cast<size_t>(limit.rlim_cur) -
                                    256) / 2;
    for (size_t& tier : tiers) {
      if (tier > max_conns) {
        std::cerr << "clamping tier " << tier << " to " << max_conns
                  << " (fd limit " << limit.rlim_cur << ")\n";
        tier = max_conns;
      }
    }
  }

  // Build the serving index.
  GlpOptions glp;
  glp.num_vertices = n;
  glp.target_avg_degree = flags.GetDouble("avg-degree");
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  if (!edges.ok()) {
    std::cerr << "graph generation failed: " << edges.status() << "\n";
    return 1;
  }
  Stopwatch build_watch;
  auto index = HopDbIndex::Build(*edges);
  if (!index.ok()) {
    std::cerr << "index build failed: " << index.status() << "\n";
    return 1;
  }
  const double build_seconds = build_watch.Seconds();
  // One immutable snapshot feeds every server below (the overhead pair
  // and the sweep server), so all runs query identical data.
  const auto snapshot = std::make_shared<const ServingSnapshot>(
      std::move(*index), "", flags.GetUint("cache"));

  ServerOptions options;
  options.num_workers = static_cast<uint32_t>(flags.GetUint("workers"));
  options.num_io_threads =
      static_cast<uint32_t>(flags.GetUint("io-threads"));
  options.cache_capacity = flags.GetUint("cache");
  options.queue_capacity = flags.GetUint("queue-capacity");

  // --- Tracing-overhead pair: tier 100, sampling off vs default on.
  // Loopback p99 at this tier is dominated by scheduler jitter, so one
  // run per config flakes; instead both servers share the snapshot and
  // three interleaved repetitions take the min p99 per config (min is
  // the noise-robust statistic for "how fast can this config go").
  const size_t overhead_tier = std::min<size_t>(100, tiers.front());
  const double overhead_seconds = std::min(seconds, 2.0);
  double p99_off = 0, p99_on = 0;
  {
    std::unique_ptr<DistanceServer> pair_servers[2];
    for (int pass = 0; pass < 2; ++pass) {
      ServerOptions pair_options = options;
      pair_options.trace_sample_rate = pass == 0 ? 0.0 : 0.01;
      auto pair_server = DistanceServer::Start(snapshot, pair_options);
      if (!pair_server.ok()) {
        std::cerr << "server start failed: " << pair_server.status() << "\n";
        return 1;
      }
      pair_servers[pass] = std::move(*pair_server);
    }
    for (int rep = 0; rep < 3; ++rep) {
      for (int pass = 0; pass < 2; ++pass) {
        OpenLoopGenerator pair_gen(
            pair_servers[pass]->port(), v2, n, seed,
            flags.GetDouble("hot-fraction"),
            static_cast<uint32_t>(flags.GetUint("hot-pairs")),
            flags.GetUint("batch-every"));
        const TierResult r =
            pair_gen.RunTier(overhead_tier, rate, overhead_seconds);
        double& best = pass == 0 ? p99_off : p99_on;
        if (rep == 0 || r.p99 < best) best = r.p99;
      }
    }
    pair_servers[0]->Stop();
    pair_servers[1]->Stop();
  }
  // 1% relative budget plus a small absolute floor absorbing the jitter
  // that survives min-of-3 — stamping eight timestamps costs far less.
  const bool overhead_ok = p99_on <= p99_off * 1.01 + 200.0;
  std::cout << "trace overhead @ tier " << overhead_tier << ": p99 "
            << FormatDouble(p99_off, 1) << " us off, "
            << FormatDouble(p99_on, 1) << " us on ("
            << (overhead_ok ? "within" : "OVER") << " budget)\n";

  // --- Hot-hub skew pair: Zipfian degree-ranked traffic against two
  // servers that differ only in the hot-hub cache (off vs k). The
  // result cache is disabled on both so repeated hub pairs cannot mask
  // the label-scan cost the dense top-k fold is meant to cut — this is
  // the cache-microarchitecture win the skewed workload exists to show.
  // Same interleaved min-of-3 discipline as the tracing pair; the
  // server-side execute p50 is the direct kernel-level signal, client
  // p99 the end-to-end one. Recorded in the JSON, not gated: loopback
  // perf deltas are machine-dependent.
  const double skew = flags.GetDouble("skew");
  const double pair_alpha = skew > 0 ? skew : 0.99;
  const uint32_t hot_hub_k = static_cast<uint32_t>(
      std::min<uint64_t>(flags.GetUint("hot-hub-k"), n));
  const std::vector<VertexId> degree_order = DegreeOrder(*edges);
  const ZipfSampler pair_zipf(degree_order, pair_alpha);
  double hub_p99[2] = {0, 0};      // [0] = hub off, [1] = hub on
  double hub_exec_p50[2] = {0, 0};
  if (hot_hub_k > 0) {
    std::unique_ptr<DistanceServer> hub_servers[2];
    for (int pass = 0; pass < 2; ++pass) {
      auto hub_index = HopDbIndex::Build(*edges);
      if (!hub_index.ok()) {
        std::cerr << "index build failed: " << hub_index.status() << "\n";
        return 1;
      }
      auto hub_snapshot = std::make_shared<const ServingSnapshot>(
          std::move(*hub_index), "", /*cache_capacity=*/0,
          pass == 0 ? 0 : hot_hub_k);
      auto hub_server = DistanceServer::Start(hub_snapshot, options);
      if (!hub_server.ok()) {
        std::cerr << "server start failed: " << hub_server.status() << "\n";
        return 1;
      }
      hub_servers[pass] = std::move(*hub_server);
    }
    for (int rep = 0; rep < 3; ++rep) {
      for (int pass = 0; pass < 2; ++pass) {
        OpenLoopGenerator hub_gen(
            hub_servers[pass]->port(), v2, n, seed,
            flags.GetDouble("hot-fraction"),
            static_cast<uint32_t>(flags.GetUint("hot-pairs")),
            flags.GetUint("batch-every"), &pair_zipf);
        const TierResult r =
            hub_gen.RunTier(overhead_tier, rate, overhead_seconds);
        if (rep == 0 || r.p99 < hub_p99[pass]) hub_p99[pass] = r.p99;
      }
    }
    for (int pass = 0; pass < 2; ++pass) {
      hub_exec_p50[pass] = static_cast<double>(
          hub_servers[pass]->metrics().execute_histogram().PercentileUs(50));
      hub_servers[pass]->Stop();
    }
    std::cout << "hot-hub skew pair (zipf " << FormatDouble(pair_alpha, 2)
              << ", k=" << hot_hub_k << ") @ tier " << overhead_tier
              << ": p99 " << FormatDouble(hub_p99[0], 1) << " us off, "
              << FormatDouble(hub_p99[1], 1) << " us on; execute p50 "
              << FormatDouble(hub_exec_p50[0], 1) << " -> "
              << FormatDouble(hub_exec_p50[1], 1) << " us\n";
  }

  auto server = DistanceServer::Start(snapshot, options);
  if (!server.ok()) {
    std::cerr << "server start failed: " << server.status() << "\n";
    return 1;
  }
  const uint16_t port = (*server)->port();
  std::cout << "serving |V|=" << n << " on 127.0.0.1:" << port << ", "
            << protocol << " framing, " << FormatDouble(rate, 0)
            << " req/s open loop, " << seconds << "s per tier\n";

  OpenLoopGenerator generator(port, v2, n, seed, flags.GetDouble("hot-fraction"),
                              static_cast<uint32_t>(flags.GetUint("hot-pairs")),
                              flags.GetUint("batch-every"),
                              skew > 0 ? &pair_zipf : nullptr);
  std::vector<TierResult> results;
  for (const size_t tier : tiers) {
    TierResult result = generator.RunTier(tier, rate, seconds);
    std::cout << "  tier " << tier << ": qps " << FormatDouble(result.qps, 0)
              << ", p50/p99 " << FormatDouble(result.p50, 1) << "/"
              << FormatDouble(result.p99, 1) << " us, busy " << result.busy
              << ", errors " << result.errors_nonbusy << "\n";
    results.push_back(result);
  }

  // Server-side view before shutdown.
  Request stats_request;
  stats_request.kind = RequestKind::kStats;
  const std::string stats_line = (*server)->Execute(stats_request);
  const ResultCache::Stats cache = (*server)->cache_stats();
  const uint64_t server_requests = (*server)->metrics().requests();
  const uint64_t server_shed = (*server)->metrics().shed();
  const uint64_t micro_batches = (*server)->metrics().micro_batches();
  const uint32_t workers = (*server)->num_workers();
  const uint32_t io_threads = (*server)->num_io_threads();
  // Per-stage pipeline histograms (fed for every request, not just
  // sampled ones) — the server-side decomposition of client latency.
  struct StageView {
    const char* name;
    uint64_t count, p50, p99;
  };
  const auto stage_view = [&](const char* name, const LatencyHistogram& h) {
    return StageView{name, h.count(), h.PercentileUs(50), h.PercentileUs(99)};
  };
  const StageView stages[] = {
      stage_view("queue_wait", (*server)->metrics().queue_wait_histogram()),
      stage_view("execute", (*server)->metrics().execute_histogram()),
      stage_view("write", (*server)->metrics().write_histogram()),
  };
  (*server)->Stop();

  uint64_t errors_nonbusy = 0;
  for (const TierResult& r : results) errors_nonbusy += r.errors_nonbusy;

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serve_load\",\n"
      << "  \"mode\": \"open_loop\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"protocol\": \"" << protocol << "\",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"graph\": {\"type\": \"glp\", \"n\": " << n
      << ", \"avg_degree\": " << FormatDouble(glp.target_avg_degree, 2)
      << ", \"seed\": " << seed << "},\n"
      << "  \"server\": {\"workers\": " << workers
      << ", \"io_threads\": " << io_threads
      << ", \"cache_capacity\": " << options.cache_capacity
      << ", \"queue_capacity\": " << options.queue_capacity
      << ", \"build_seconds\": " << FormatDouble(build_seconds, 3) << "},\n"
      << "  \"rate\": " << FormatDouble(rate, 1) << ",\n"
      << "  \"seconds_per_tier\": " << FormatDouble(seconds, 2) << ",\n"
      << "  \"skew\": " << FormatDouble(skew, 2) << ",\n"
      << "  \"tiers\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    out << "    {\"connections\": " << r.connections << ", \"sent\": "
        << r.sent << ", \"received\": " << r.received << ", \"busy\": "
        << r.busy << ", \"errors_nonbusy\": " << r.errors_nonbusy
        << ", \"qps\": " << FormatDouble(r.qps, 1)
        << ", \"latency_us\": {\"p50\": " << FormatDouble(r.p50, 1)
        << ", \"p90\": " << FormatDouble(r.p90, 1) << ", \"p99\": "
        << FormatDouble(r.p99, 1) << ", \"max\": "
        << FormatDouble(r.max_us, 1) << "}}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"trace_overhead\": {\"connections\": " << overhead_tier
      << ", \"p99_us_sampling_off\": " << FormatDouble(p99_off, 1)
      << ", \"p99_us_sampling_on\": " << FormatDouble(p99_on, 1)
      << ", \"within_budget\": " << (overhead_ok ? "true" : "false")
      << "},\n"
      << "  \"hot_hub_skew\": {\"alpha\": " << FormatDouble(pair_alpha, 2)
      << ", \"hot_hub_k\": " << hot_hub_k
      << ", \"connections\": " << overhead_tier
      << ", \"p99_us_hub_off\": " << FormatDouble(hub_p99[0], 1)
      << ", \"p99_us_hub_on\": " << FormatDouble(hub_p99[1], 1)
      << ", \"execute_p50_us_hub_off\": " << FormatDouble(hub_exec_p50[0], 1)
      << ", \"execute_p50_us_hub_on\": " << FormatDouble(hub_exec_p50[1], 1)
      << "},\n"
      << "  \"stages\": {";
  for (size_t i = 0; i < 3; ++i) {
    const StageView& s = stages[i];
    out << (i > 0 ? ", " : "") << "\"" << s.name << "\": {\"count\": "
        << s.count << ", \"p50_us\": " << s.p50 << ", \"p99_us\": " << s.p99
        << "}";
  }
  out << "},\n"
      << "  \"server_requests\": " << server_requests << ",\n"
      << "  \"server_shed\": " << server_shed << ",\n"
      << "  \"errors_nonbusy\": " << errors_nonbusy << ",\n"
      << "  \"cache\": {\"hits\": " << cache.hits << ", \"misses\": "
      << cache.misses << ", \"hit_rate\": "
      << FormatDouble(cache.HitRate(), 4) << ", \"entries\": "
      << cache.entries << ", \"evictions\": " << cache.evictions << "},\n"
      << "  \"micro_batches\": " << micro_batches << ",\n"
      << "  \"server_stats\": \"" << stats_line << "\"\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  // BUSY is load shedding doing its job; anything else is a failure —
  // including tracing costing more than its budget.
  return errors_nonbusy == 0 && overhead_ok ? 0 : 1;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
