// Closed-loop load generator for the distance server: C client threads
// over real loopback TCP, each firing the next request as soon as the
// previous answer lands, against an in-process DistanceServer. The
// workload is skewed (a configurable fraction of requests hits a small
// hot pair set — the scale-free serving pattern the result cache is
// for), with a slice of BATCH traffic mixed in.
//
// Emits machine-readable results to --out (default BENCH_serve.json):
// QPS, client-observed p50/p90/p99/max latency, cache hit rate, and the
// server's own STATS counters — the perf-trajectory data points CI
// archives per commit.
//
//   bench_serve_load            # full run (~4s of traffic)
//   bench_serve_load --ci       # seconds-long CI mode, same JSON shape

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "hopdb.h"
#include "server/client.h"
#include "server/server.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

struct ClientResult {
  std::vector<double> latencies_us;
  uint64_t requests = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted->size() - 1));
  return (*sorted)[rank];
}

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("n", "2000", "graph vertices (GLP)");
  flags.Define("avg-degree", "6", "graph average degree");
  flags.Define("seed", "1", "graph + workload seed");
  flags.Define("clients", "4", "concurrent closed-loop TCP clients");
  flags.Define("seconds", "4", "traffic duration per run");
  flags.Define("workers", "0", "server worker threads (0 = all cores)");
  flags.Define("cache", "65536", "server result-cache capacity (0 = off)");
  flags.Define("hot-fraction", "0.8",
               "share of requests drawn from the hot pair set");
  flags.Define("hot-pairs", "128", "size of the hot pair set");
  flags.Define("batch-every", "16",
               "every k-th request is a BATCH of 8 (0 = never)");
  flags.Define("out", "BENCH_serve.json", "machine-readable output path");
  flags.Define("ci", "false", "CI mode: small graph, short run");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage("bench_serve_load — distance-server load "
                             "generator (closed loop over TCP)");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const VertexId n =
      ci ? 600 : static_cast<VertexId>(flags.GetUint("n"));
  const double seconds = ci ? 1.0 : flags.GetDouble("seconds");
  const uint32_t num_clients =
      ci ? 3 : static_cast<uint32_t>(flags.GetUint("clients"));
  const uint64_t seed = flags.GetUint("seed");
  const double hot_fraction = flags.GetDouble("hot-fraction");
  const uint32_t hot_pairs = static_cast<uint32_t>(flags.GetUint("hot-pairs"));
  const uint64_t batch_every = flags.GetUint("batch-every");

  // Build the serving index.
  GlpOptions glp;
  glp.num_vertices = n;
  glp.target_avg_degree = flags.GetDouble("avg-degree");
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  if (!edges.ok()) {
    std::cerr << "graph generation failed: " << edges.status() << "\n";
    return 1;
  }
  Stopwatch build_watch;
  auto index = HopDbIndex::Build(*edges);
  if (!index.ok()) {
    std::cerr << "index build failed: " << index.status() << "\n";
    return 1;
  }
  const double build_seconds = build_watch.Seconds();

  ServerOptions options;
  options.num_workers = static_cast<uint32_t>(flags.GetUint("workers"));
  options.cache_capacity = flags.GetUint("cache");
  auto server = DistanceServer::Start(std::move(*index), options);
  if (!server.ok()) {
    std::cerr << "server start failed: " << server.status() << "\n";
    return 1;
  }
  const uint16_t port = (*server)->port();
  std::cout << "serving |V|=" << n << " on 127.0.0.1:" << port << ", "
            << num_clients << " clients, " << seconds << "s\n";

  // A shared hot set makes the cache-hit story reproducible.
  std::vector<std::pair<VertexId, VertexId>> hot;
  {
    Rng rng(DeriveSeed(seed, 7));
    hot.reserve(hot_pairs);
    for (uint32_t i = 0; i < hot_pairs; ++i) {
      hot.emplace_back(static_cast<VertexId>(rng.Below(n)),
                       static_cast<VertexId>(rng.Below(n)));
    }
  }

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(num_clients);
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& result = results[c];
      auto client = DistanceClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        result.errors++;
        return;
      }
      Rng rng(DeriveSeed(seed, 100 + c));
      while (!stop.load(std::memory_order_relaxed)) {
        VertexId s, t;
        if (static_cast<double>(rng.Below(1000)) < hot_fraction * 1000.0) {
          const auto& pair = hot[rng.Below(hot.size())];
          s = pair.first;
          t = pair.second;
        } else {
          s = static_cast<VertexId>(rng.Below(n));
          t = static_cast<VertexId>(rng.Below(n));
        }
        Stopwatch watch;
        if (batch_every > 0 && result.requests % batch_every == 0) {
          std::string line = "BATCH " + std::to_string(s);
          for (int j = 0; j < 8; ++j) {
            line += ' ';
            line += std::to_string(rng.Below(n));
          }
          auto response = client->RoundTrip(line);
          if (!response.ok() || !StartsWith(*response, "OK")) {
            result.errors++;
            if (!response.ok()) break;  // connection lost
          }
        } else {
          auto d = client->QueryDistance(s, t);
          if (!d.ok()) {
            result.errors++;
            break;
          }
        }
        result.latencies_us.push_back(watch.Micros());
        result.requests++;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();

  // Pull the server-side view before shutdown.
  Request stats_request;
  stats_request.kind = RequestKind::kStats;
  const std::string stats_line = (*server)->Execute(stats_request);
  const ResultCache::Stats cache = (*server)->cache_stats();
  const ServerMetrics& metrics = (*server)->metrics();
  const uint64_t server_requests = metrics.requests();
  const uint64_t micro_batches = metrics.micro_batches();
  const uint32_t workers = (*server)->num_workers();
  (*server)->Stop();

  std::vector<double> all;
  uint64_t requests = 0, errors = 0;
  for (ClientResult& r : results) {
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
    requests += r.requests;
    errors += r.errors;
  }
  std::sort(all.begin(), all.end());
  const double qps = seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  const double p50 = Percentile(&all, 50);
  const double p90 = Percentile(&all, 90);
  const double p99 = Percentile(&all, 99);
  const double max_us = all.empty() ? 0 : all.back();

  std::cout << "  requests      " << requests << " (" << errors
            << " errors)\n"
            << "  qps           " << FormatDouble(qps, 0) << "\n"
            << "  p50 / p99     " << FormatDouble(p50, 1) << " / "
            << FormatDouble(p99, 1) << " us\n"
            << "  cache hits    " << cache.hits << " ("
            << FormatDouble(cache.HitRate() * 100, 1) << "%)\n"
            << "  micro-batches " << micro_batches << "\n";

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serve_load\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"graph\": {\"type\": \"glp\", \"n\": " << n
      << ", \"avg_degree\": " << FormatDouble(glp.target_avg_degree, 2)
      << ", \"seed\": " << seed << "},\n"
      << "  \"server\": {\"workers\": " << workers
      << ", \"cache_capacity\": " << options.cache_capacity
      << ", \"build_seconds\": " << FormatDouble(build_seconds, 3) << "},\n"
      << "  \"clients\": " << num_clients << ",\n"
      << "  \"seconds\": " << FormatDouble(seconds, 2) << ",\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"server_requests\": " << server_requests << ",\n"
      << "  \"errors\": " << errors << ",\n"
      << "  \"qps\": " << FormatDouble(qps, 1) << ",\n"
      << "  \"latency_us\": {\"p50\": " << FormatDouble(p50, 1)
      << ", \"p90\": " << FormatDouble(p90, 1) << ", \"p99\": "
      << FormatDouble(p99, 1) << ", \"max\": " << FormatDouble(max_us, 1)
      << "},\n"
      << "  \"cache\": {\"hits\": " << cache.hits << ", \"misses\": "
      << cache.misses << ", \"hit_rate\": "
      << FormatDouble(cache.HitRate(), 4) << ", \"entries\": "
      << cache.entries << ", \"evictions\": " << cache.evictions << "},\n"
      << "  \"micro_batches\": " << micro_batches << ",\n"
      << "  \"server_stats\": \"" << stats_line << "\"\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
