// Design-choice ablations for the decisions DESIGN.md calls out:
//   1. pruning off vs on              (Section 3.3 is what keeps labels small)
//   2. candidate witnesses off vs on  (Section 4.2's outer-block detail)
//   3. ranking policy                 (degree vs in×out product vs identity)
//   4. hybrid switch iteration sweep  (Section 5.4's "first 10 iterations")
//   5. bit-parallel post-processing   (Section 6: size and query effects)

#include <cstdio>

#include "bench_common.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "labeling/bit_parallel.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

Result<CsrGraph> StandIn(const BenchEnv& env, bool directed) {
  GlpOptions glp;
  glp.num_vertices =
      static_cast<VertexId>(30000 * env.scale);
  glp.target_avg_degree = 8;
  glp.seed = 424242;
  EdgeList edges;
  if (directed) {
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateDirectedGlp(glp));
  } else {
    HOPDB_ASSIGN_OR_RETURN(edges, GenerateGlp(glp));
  }
  return CsrGraph::FromEdgeList(edges);
}

Result<CsrGraph> Ranked(const CsrGraph& g, RankingPolicy policy) {
  return RelabelByRank(g, ComputeRanking(g, policy));
}

/// A uniformly random order — the honest "no ranking" control (identity
/// order is NOT neutral on generated graphs: GLP's oldest vertices are
/// its hubs, so identity accidentally approximates degree order).
Result<CsrGraph> RandomOrder(const CsrGraph& g, uint64_t seed) {
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  Rng rng(seed);
  for (VertexId i = g.num_vertices(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  return RelabelByRank(g, RankingFromOrder(std::move(order)));
}

void AblatePruning(const CsrGraph& ranked, double budget) {
  std::printf("1) Label pruning (Section 3.3):\n");
  AsciiTable table({"config", "entries", "avg |label|", "build s", "iters"});
  for (bool prune : {true, false}) {
    BuildOptions opts;
    opts.prune = prune;
    opts.time_budget_seconds = budget;
    // Unpruned label sets grow without bound on scale-free graphs; stop
    // after a few iterations to show the divergence.
    if (!prune) opts.max_iterations = 4;
    auto out = BuildHopLabeling(ranked, opts);
    if (!out.ok()) {
      table.AddRow({prune ? "prune on" : "prune off (4 iters)",
                    AsciiTable::Dash(), AsciiTable::Dash(),
                    AsciiTable::Dash(), AsciiTable::Dash()});
      continue;
    }
    table.AddRow({prune ? "prune on (complete)" : "prune off (4 iters!)",
                  HumanCount(out->index.TotalEntries()),
                  FormatDouble(out->index.AvgLabelSize(), 1),
                  FormatDouble(out->stats.total_seconds, 2),
                  std::to_string(out->stats.num_rule_iterations)});
  }
  table.Print();
  std::printf("\n");
}

void AblateWitnesses(const CsrGraph& ranked, double budget) {
  std::printf("2) Pruning witnesses include this iteration's candidates:\n");
  AsciiTable table({"config", "entries", "build s"});
  for (bool with : {true, false}) {
    BuildOptions opts;
    opts.prune_with_candidates = with;
    opts.time_budget_seconds = budget;
    auto out = BuildHopLabeling(ranked, opts);
    if (!out.ok()) continue;
    table.AddRow({with ? "old + candidates (default)" : "old entries only",
                  HumanCount(out->index.TotalEntries()),
                  FormatDouble(out->stats.total_seconds, 2)});
  }
  table.Print();
  std::printf("\n");
}

void AblateRanking(const CsrGraph& base, double budget) {
  std::printf("3) Vertex ranking policy (directed graph):\n");
  AsciiTable table({"ranking", "entries", "avg |label|", "build s"});
  struct Row {
    const char* name;
    RankingPolicy policy;
  };
  for (const Row& row : {Row{"in x out product (paper)",
                             RankingPolicy::kInOutProduct},
                         Row{"total degree", RankingPolicy::kDegree},
                         Row{"random order (control)",
                             RankingPolicy::kIdentity}}) {
    auto ranked = row.policy == RankingPolicy::kIdentity
                      ? RandomOrder(base, 31337)
                      : Ranked(base, row.policy);
    ranked.status().CheckOK();
    BuildOptions opts;
    opts.time_budget_seconds = budget;
    auto out = BuildHopLabeling(*ranked, opts);
    if (!out.ok()) {
      table.AddRow({row.name, AsciiTable::Dash(), AsciiTable::Dash(),
                    AsciiTable::Dash()});
      continue;
    }
    table.AddRow({row.name, HumanCount(out->index.TotalEntries()),
                  FormatDouble(out->index.AvgLabelSize(), 1),
                  FormatDouble(out->stats.total_seconds, 2)});
  }
  table.Print();
  std::printf("\n");
}

void AblateSwitchPoint(const CsrGraph& ranked, double budget) {
  std::printf("4) Hybrid switch iteration (Section 5.4, default 10):\n");
  AsciiTable table({"switch after", "build s", "iterations",
                    "peak candidates"});
  for (uint32_t sw : {1u, 2u, 5u, 10u, 20u}) {
    BuildOptions opts;
    opts.mode = BuildMode::kHybrid;
    opts.hybrid_switch_iteration = sw;
    opts.time_budget_seconds = budget;
    auto out = BuildHopLabeling(ranked, opts);
    if (!out.ok()) {
      table.AddRow({std::to_string(sw), AsciiTable::Dash(),
                    AsciiTable::Dash(), AsciiTable::Dash()});
      continue;
    }
    table.AddRow({std::to_string(sw),
                  FormatDouble(out->stats.total_seconds, 2),
                  std::to_string(out->stats.num_rule_iterations),
                  HumanCount(out->stats.peak_candidates)});
  }
  table.Print();
  std::printf("\n");
}

void AblateBitParallel(const CsrGraph& ranked, size_t queries) {
  std::printf("5) Bit-parallel post-processing (Section 6):\n");
  auto out = BuildHopLabeling(ranked, {});
  out.status().CheckOK();
  TwoHopIndex plain = out->index;
  auto pairs = RandomPairs(ranked.num_vertices(), queries, 99);
  QueryTiming plain_t = TimeQueries(pairs, [&](VertexId s, VertexId t) {
    return plain.Query(s, t);
  });
  auto bp = BitParallelIndex::Transform(std::move(out->index), ranked, {});
  bp.status().CheckOK();
  QueryTiming bp_t = TimeQueries(pairs, [&](VertexId s, VertexId t) {
    return bp->Query(s, t);
  });
  HOPDB_CHECK_EQ(plain_t.checksum, bp_t.checksum)
      << "BP transform changed answers";
  AsciiTable table({"index", "normal entries", "bp tuples", "size MB",
                    "query us"});
  table.AddRow({"2-hop labels", HumanCount(plain.TotalEntries()), "0",
                Mb(plain.PaperSizeBytes()), FormatDouble(plain_t.avg_micros,
                                                         2)});
  table.AddRow({"bit-parallel", HumanCount(bp->NormalEntries()),
                HumanCount(bp->BpTuples()), Mb(bp->PaperSizeBytes()),
                FormatDouble(bp_t.avg_micros, 2)});
  table.Print();
  std::printf("\n");
}

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "ablation_design: ablations for the design choices "
                    "DESIGN.md calls out",
                    &env)) {
    return 0;
  }
  std::printf("Design ablations (GLP stand-in, |V|=%d)\n\n",
              static_cast<int>(30000 * env.scale));
  auto undirected = StandIn(env, /*directed=*/false);
  undirected.status().CheckOK();
  auto directed = StandIn(env, /*directed=*/true);
  directed.status().CheckOK();
  auto ranked_und = Ranked(*undirected, RankingPolicy::kDegree);
  ranked_und.status().CheckOK();

  AblatePruning(*ranked_und, env.budget_seconds);
  AblateWitnesses(*ranked_und, env.budget_seconds);
  AblateRanking(*directed, env.budget_seconds);
  AblateSwitchPoint(*ranked_und, env.budget_seconds);
  AblateBitParallel(*ranked_und, env.queries);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
