// Ordering-strategy ablation for Section 7 (general graphs).
//
// The paper: "For graphs that are not scale-free, the ranking by degree
// may not be effective... some heuristical method to approximate this
// ranking may be helpful. With such a ranking, our algorithms can be
// applied."
//
// Two graph families make the point:
//   * a GLP scale-free graph, where degree-family orders dominate and a
//     random order pays a visible label penalty;
//   * a grid "road network", where degree carries no signal (every
//     interior vertex has degree 4) and sampled betweenness recovers the
//     arterial structure.
// For each (family, strategy): index size, build time, query latency.
// Correctness under every order is enforced by the test suite
// (ordering_test.cc); this binary measures the cost differences.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "gen/small_graphs.h"
#include "graph/ordering.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace bench {
namespace {

constexpr OrderStrategy kStrategies[] = {
    OrderStrategy::kDegree,          OrderStrategy::kInOutProduct,
    OrderStrategy::kNeighborhoodDegree, OrderStrategy::kDegeneracy,
    OrderStrategy::kSampledBetweenness, OrderStrategy::kSeparator,
    OrderStrategy::kRandom,
};

void RunFamily(const std::string& label, const CsrGraph& base,
               const BenchEnv& env) {
  std::printf("%s: |V|=%u |E|=%llu\n", label.c_str(), base.num_vertices(),
              static_cast<unsigned long long>(base.num_edges()));
  AsciiTable table(
      {"order", "entries", "avg |label|", "build s", "query us"});
  const auto pairs = RandomPairs(base.num_vertices(),
                                 std::min<size_t>(env.queries, 20000), 99);
  for (const OrderStrategy strategy : kStrategies) {
    OrderOptions opts;
    opts.betweenness_samples = 64;
    auto order = ComputeOrder(base, strategy, opts);
    order.status().CheckOK();
    auto ranked = RelabelByRank(base, RankingFromOrder(std::move(*order)));
    ranked.status().CheckOK();

    BuildOptions build;
    build.time_budget_seconds = env.budget_seconds;
    // Bad orders (random on a big scale-free graph) explode the candidate
    // volume; cap it so they DNF in bounded memory instead of swapping.
    build.max_candidates_per_iteration = 60'000'000;
    Stopwatch watch;
    auto built = BuildHopLabeling(*ranked, build);
    const double build_seconds = watch.Seconds();
    if (!built.ok()) {
      table.AddRow({OrderStrategyName(strategy), "—", "—",
                    SecondsOrDash(built.status(), build_seconds), "—"});
      continue;
    }
    const QueryTiming timing =
        TimeQueries(pairs, [&](VertexId s, VertexId t) {
          return built->index.Query(s, t);
        });
    table.AddRow({OrderStrategyName(strategy),
                  std::to_string(built->index.TotalEntries()),
                  FormatDouble(built->index.AvgLabelSize(), 1),
                  FormatDouble(build_seconds, 2),
                  FormatDouble(timing.avg_micros, 2)});
  }
  table.Print();
  std::printf("\n");
}

int Main(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "Ordering-strategy ablation (Section 7): scale-free vs "
                    "road-like graphs under six vertex orders.",
                    &env)) {
    return 0;
  }

  // Scale-free family (the paper's home turf).
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(20000 * env.scale);
  glp.target_avg_degree = 8;
  glp.seed = 1337;
  auto scale_free =
      CsrGraph::FromEdgeList(GenerateGlp(glp).ValueOrDie());
  scale_free.status().CheckOK();
  RunFamily("scale-free (GLP)", *scale_free, env);

  // Road-like family: a grid has no degree signal at all.
  const VertexId side =
      static_cast<VertexId>(std::max(10.0, 90 * env.scale));
  auto grid = CsrGraph::FromEdgeList(GridGraph(side, side));
  grid.status().CheckOK();
  RunFamily("road-like (grid " + std::to_string(side) + "x" +
                std::to_string(side) + ")",
            *grid, env);

  std::printf(
      "Reading: on the scale-free graph every degree-family order ties "
      "and random\nexplodes (DNF) — Section 2's hub premise. On the grid "
      "the roles invert: the\ndegree family carries no signal and DNFs, "
      "while the structural orders\n(separator, random) finish — Section "
      "7's point that general graphs need a\nstructural heuristic, not "
      "degree. Road-network-grade orders (CH-style) are\nout of scope.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Main(argc, argv); }
