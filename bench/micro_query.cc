// Query-path microbenchmarks (google-benchmark): per-query latency of
// HopDb labels, bit-parallel labels, PLL labels, the disk-resident index,
// and index-free bidirectional search, plus the core label-intersection
// primitive. These are the per-operation counterparts of Table 6's
// aggregate query columns.

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/is_label.h"
#include "baselines/pll.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/bit_parallel.h"
#include "labeling/builder.h"
#include "labeling/compressed_index.h"
#include "labeling/disk_index.h"
#include "query/batch.h"
#include "query/knn.h"
#include "query/path.h"
#include "search/bidirectional.h"

namespace hopdb {
namespace {

constexpr VertexId kVertices = 20000;
constexpr size_t kPairs = 4096;

/// Shared lazily-built fixture: one scale-free graph, every index.
struct MicroContext {
  CsrGraph ranked;
  TwoHopIndex hopdb;
  TwoHopIndex pll;
  BitParallelIndex bp;
  TempDir dir;
  DiskIndex disk;
  CompressedIndex compressed;
  std::unique_ptr<IsLabelPartialIndex> is_label_partial;
  std::vector<QueryPair> pairs;

  static MicroContext& Get() {
    static MicroContext* ctx = Build();
    return *ctx;
  }

  static MicroContext* Build() {
    auto* ctx = new MicroContext();
    GlpOptions glp;
    glp.num_vertices = kVertices;
    glp.target_avg_degree = 8;
    glp.seed = 7;
    auto edges = GenerateGlp(glp);
    edges.status().CheckOK();
    auto graph = CsrGraph::FromEdgeList(*edges);
    graph.status().CheckOK();
    RankMapping mapping = ComputeRanking(*graph, RankingPolicy::kDegree);
    auto ranked = RelabelByRank(*graph, mapping);
    ranked.status().CheckOK();
    ctx->ranked = std::move(*ranked);

    auto hop = BuildHopLabeling(ctx->ranked, {});
    hop.status().CheckOK();
    ctx->hopdb = std::move(hop->index);

    auto pll = BuildPll(ctx->ranked);
    pll.status().CheckOK();
    ctx->pll = std::move(pll->index);

    TwoHopIndex copy = ctx->hopdb;
    auto bp = BitParallelIndex::Transform(std::move(copy), ctx->ranked, {});
    bp.status().CheckOK();
    ctx->bp = std::move(*bp);

    auto dir = TempDir::Create("micro_query");
    dir.status().CheckOK();
    ctx->dir = std::move(*dir);
    std::string path = ctx->dir.File("idx.hdi");
    DiskIndex::Write(ctx->hopdb, path).CheckOK();
    auto disk = DiskIndex::Open(path);
    disk.status().CheckOK();
    ctx->disk = std::move(*disk);

    auto compressed = CompressedIndex::FromIndex(ctx->hopdb);
    compressed.status().CheckOK();
    ctx->compressed = std::move(*compressed);

    auto partial = BuildIsLabelPartial(ctx->ranked, /*num_levels=*/4);
    partial.status().CheckOK();
    auto partial_engine = IsLabelPartialIndex::Create(std::move(*partial));
    partial_engine.status().CheckOK();
    ctx->is_label_partial.reset(
        new IsLabelPartialIndex(std::move(*partial_engine)));

    ctx->pairs = RandomPairs(kVertices, kPairs, 99);
    return ctx;
  }
};

void BM_HopDbQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.hopdb.Query(p.s, p.t));
  }
}
BENCHMARK(BM_HopDbQuery);

void BM_PllQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.pll.Query(p.s, p.t));
  }
}
BENCHMARK(BM_PllQuery);

void BM_BitParallelQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.bp.Query(p.s, p.t));
  }
}
BENCHMARK(BM_BitParallelQuery);

void BM_DiskQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.disk.Query(p.s, p.t));
  }
}
BENCHMARK(BM_DiskQuery);

void BM_CompressedQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.compressed.Query(p.s, p.t));
  }
}
BENCHMARK(BM_CompressedQuery);

void BM_IsLabelPartialQuery(benchmark::State& state) {
  // The paper's Section 1 criticism quantified: IS-Label's deployment
  // mode answers via labels + bi-Dijkstra over the in-memory residual
  // graph — orders slower than a pure label lookup.
  MicroContext& ctx = MicroContext::Get();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.is_label_partial->Query(p.s, p.t));
  }
  state.counters["gk_vertices"] =
      static_cast<double>(ctx.is_label_partial->residual_vertices());
  state.counters["gk_edges"] =
      static_cast<double>(ctx.is_label_partial->residual_edges());
}
BENCHMARK(BM_IsLabelPartialQuery);

void BM_KnnQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  static const KnnEngine* engine =
      new KnnEngine(ctx.hopdb, KnnEngine::Direction::kForward);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(engine->Query(p.s, k));
  }
}
BENCHMARK(BM_KnnQuery)->Arg(10)->Arg(100);

void BM_OneToManyRow(benchmark::State& state) {
  // One source against a fixed 64-target panel via the bucket engine —
  // the centrality-workload inner loop.
  MicroContext& ctx = MicroContext::Get();
  static const OneToManyEngine* engine = [] {
    std::vector<VertexId> targets;
    for (VertexId v = 0; v < 64; ++v) targets.push_back(v * 311 % kVertices);
    return new OneToManyEngine(MicroContext::Get().hopdb,
                               std::move(targets));
  }();
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(engine->Query(p.s));
  }
}
BENCHMARK(BM_OneToManyRow);

void BM_PathReconstruction(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  PathReconstructor recon(ctx.ranked, ctx.hopdb);
  size_t i = 0;
  uint64_t hops = 0, paths = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    auto path = recon.ShortestPath(p.s, p.t);
    if (path.ok()) {
      hops += path->size() - 1;
      ++paths;
    }
    benchmark::DoNotOptimize(path);
  }
  if (paths > 0) {
    state.counters["avg_hops"] =
        static_cast<double>(hops) / static_cast<double>(paths);
  }
}
BENCHMARK(BM_PathReconstruction);

void BM_HopDbQueryThroughput(benchmark::State& state) {
  // Concurrent read-only queries: the index is immutable, so throughput
  // should scale with threads until memory bandwidth saturates.
  MicroContext& ctx = MicroContext::Get();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(ctx.hopdb.Query(p.s, p.t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HopDbQueryThroughput)->Threads(1)->Threads(4)->Threads(8);

void BM_BidirectionalQuery(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  BidirectionalSearcher searcher(ctx.ranked);
  size_t i = 0;
  for (auto _ : state) {
    const QueryPair& p = ctx.pairs[i++ & (kPairs - 1)];
    benchmark::DoNotOptimize(searcher.Query(p.s, p.t));
  }
}
BENCHMARK(BM_BidirectionalQuery);

void BM_LabelIntersection(benchmark::State& state) {
  MicroContext& ctx = MicroContext::Get();
  // Pick two of the largest labels for a worst-ish case merge.
  VertexId a = kVertices - 1, b = kVertices - 2;
  for (VertexId v = 0; v < ctx.hopdb.num_vertices(); ++v) {
    if (ctx.hopdb.OutLabel(v).size() > ctx.hopdb.OutLabel(a).size()) {
      b = a;
      a = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectLabels(ctx.hopdb.OutLabel(a), ctx.hopdb.OutLabel(b)));
  }
  state.counters["label_a"] =
      static_cast<double>(ctx.hopdb.OutLabel(a).size());
  state.counters["label_b"] =
      static_cast<double>(ctx.hopdb.OutLabel(b).size());
}
BENCHMARK(BM_LabelIntersection);

void BM_BuildSmallIndex(benchmark::State& state) {
  GlpOptions glp;
  glp.num_vertices = static_cast<VertexId>(state.range(0));
  glp.target_avg_degree = 6;
  glp.seed = 5;
  auto edges = GenerateGlp(glp);
  edges.status().CheckOK();
  auto graph = CsrGraph::FromEdgeList(*edges);
  graph.status().CheckOK();
  auto ranked = RelabelByRank(
      *graph, ComputeRanking(*graph, RankingPolicy::kDegree));
  ranked.status().CheckOK();
  for (auto _ : state) {
    auto out = BuildHopLabeling(*ranked, {});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph->num_edges()));
}
BENCHMARK(BM_BuildSmallIndex)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hopdb

BENCHMARK_MAIN();
