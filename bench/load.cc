// Index load-latency bench: how long from "file on disk" to "first
// query answered", per on-disk format — the startup/hot-swap cost the
// HLI2 mmap format exists to eliminate.
//
// For each graph size it builds one index and measures, per format:
//   HLI1 (heap):  Load() deserialization (twice: cold-ish first read and
//                 a warm re-load) + the first query after each
//   HLI2 (mmap):  Open() metadata validation + the first query, plus a
//                 second Open() — the exact RELOAD/remap path
// "Cold" here means "first access after writing" (an unprivileged
// process cannot drop the OS page cache), so the HLI1 numbers are
// dominated by deserialization CPU — precisely the cost mmap avoids —
// and the comparison is conservative: with a truly cold page cache the
// HLI1 gap only widens.
//
// The point the JSON makes: HLI1 load time grows linearly with label
// count; HLI2 open + remap time does not (it is O(|V|) metadata work),
// so hot-swapping a 10x bigger index costs the same milliseconds.
//
//   bench_load            # 20k + 60k GLP sweep (~30 s, build-dominated)
//   bench_load --ci       # seconds-long CI mode, same JSON shape
//
// Emits BENCH_load.json (schema in docs/FORMATS.md; archived by CI).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/glp.h"
#include "hopdb.h"
#include "io/temp_dir.h"
#include "labeling/mapped_index.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

struct SizeResult {
  VertexId n = 0;
  uint64_t entries = 0;
  uint64_t hli1_bytes = 0;
  uint64_t hli2_bytes = 0;
  double build_seconds = 0;
  double hli1_load_cold_s = 0;
  double hli1_load_warm_s = 0;
  double hli1_first_query_us = 0;
  double hli2_open_cold_s = 0;
  double hli2_remap_s = 0;
  double hli2_first_query_us = 0;
  bool answers_agree = false;
};

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("sizes", "20000,60000",
               "comma-separated GLP vertex counts to sweep");
  flags.Define("avg-degree", "10", "graph average degree");
  flags.Define("seed", "1", "graph seed");
  flags.Define("queries", "64", "first-query sample count per format");
  flags.Define("out", "BENCH_load.json", "machine-readable output path");
  flags.Define("ci", "false", "CI mode: small sizes, same JSON shape");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage(
        "bench_load — cold/warm index load + first-query latency per "
        "on-disk format (HLI1 deserialize vs HLI2 mmap)");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const uint64_t seed = flags.GetUint("seed");
  const uint64_t num_queries = flags.GetUint("queries");
  if (num_queries == 0) {
    // The per-query averages divide by this; 0 would put NaN in the
    // JSON artifact.
    std::cerr << "--queries must be > 0\n";
    return 1;
  }
  std::vector<VertexId> sizes;
  for (const std::string& tok :
       SplitString(ci ? "500,2000" : flags.GetString("sizes"), ',')) {
    uint64_t v = 0;
    if (!ParseUint64(TrimString(tok), &v) || v == 0) {
      std::cerr << "bad --sizes entry '" << tok << "'\n";
      return 1;
    }
    sizes.push_back(static_cast<VertexId>(v));
  }

  auto tmp = TempDir::Create("bench_load");
  if (!tmp.ok()) {
    std::cerr << "temp dir: " << tmp.status() << "\n";
    return 1;
  }

  std::vector<SizeResult> results;
  for (const VertexId n : sizes) {
    SizeResult r;
    r.n = n;

    GlpOptions glp;
    glp.num_vertices = n;
    glp.target_avg_degree = flags.GetDouble("avg-degree");
    glp.seed = seed;
    auto edges = GenerateGlp(glp);
    if (!edges.ok()) {
      std::cerr << "graph generation failed: " << edges.status() << "\n";
      return 1;
    }
    Stopwatch build_watch;
    auto built = HopDbIndex::Build(*edges);
    if (!built.ok()) {
      std::cerr << "index build failed: " << built.status() << "\n";
      return 1;
    }
    r.build_seconds = build_watch.Seconds();
    r.entries = built->label_index().TotalEntries();

    const std::string hli1_path = tmp->path() + "/g" + std::to_string(n) +
                                  ".hopdb";
    const std::string hli2_path = hli1_path + ".hli2";
    if (Status s = built->Save(hli1_path); !s.ok()) {
      std::cerr << "save failed: " << s << "\n";
      return 1;
    }
    if (Status s = MappedIndex::Write(built->label_index(), built->ranking(),
                                      hli2_path);
        !s.ok()) {
      std::cerr << "HLI2 write failed: " << s << "\n";
      return 1;
    }
    r.hli1_bytes = FileSizeBytes(hli1_path).ValueOrDie();
    r.hli2_bytes = FileSizeBytes(hli2_path).ValueOrDie();

    // Shared query sample; both formats answer the identical pairs so
    // the first-query numbers (and the cross-check) are comparable.
    std::vector<std::pair<VertexId, VertexId>> pairs;
    {
      Rng rng(DeriveSeed(seed, 13));
      pairs.reserve(num_queries);
      for (uint64_t i = 0; i < num_queries; ++i) {
        pairs.emplace_back(static_cast<VertexId>(rng.Below(n)),
                           static_cast<VertexId>(rng.Below(n)));
      }
    }
    std::vector<Distance> heap_answers, mapped_answers;

    // --- HLI1: full deserialization, twice.
    {
      Stopwatch watch;
      auto loaded = HopDbIndex::Load(hli1_path);
      r.hli1_load_cold_s = watch.Seconds();
      if (!loaded.ok()) {
        std::cerr << "HLI1 load failed: " << loaded.status() << "\n";
        return 1;
      }
      Stopwatch query_watch;
      for (const auto& [s, t] : pairs) {
        heap_answers.push_back(loaded->Query(s, t));
      }
      r.hli1_first_query_us =
          query_watch.Micros() / static_cast<double>(pairs.size());
    }
    {
      Stopwatch watch;
      auto loaded = HopDbIndex::Load(hli1_path);
      r.hli1_load_warm_s = watch.Seconds();
      if (!loaded.ok()) {
        std::cerr << "HLI1 warm load failed: " << loaded.status() << "\n";
        return 1;
      }
    }

    // --- HLI2: mmap open + first queries, then the remap path.
    {
      Stopwatch watch;
      auto mapped = MappedIndex::Open(hli2_path);
      r.hli2_open_cold_s = watch.Seconds();
      if (!mapped.ok()) {
        std::cerr << "HLI2 open failed: " << mapped.status() << "\n";
        return 1;
      }
      Stopwatch query_watch;
      for (const auto& [s, t] : pairs) {
        mapped_answers.push_back(mapped->Query(s, t));
      }
      r.hli2_first_query_us =
          query_watch.Micros() / static_cast<double>(pairs.size());
    }
    {
      // The RELOAD path of an mmap-served index: re-open the (now
      // page-cache-warm) file.
      Stopwatch watch;
      auto remapped = MappedIndex::Open(hli2_path);
      r.hli2_remap_s = watch.Seconds();
      if (!remapped.ok()) {
        std::cerr << "HLI2 remap failed: " << remapped.status() << "\n";
        return 1;
      }
    }
    r.answers_agree = heap_answers == mapped_answers;
    if (!r.answers_agree) {
      std::cerr << "FAIL: HLI2 answers diverge from HLI1 at n=" << n << "\n";
    }

    std::cout << "n=" << n << " entries=" << r.entries << "\n"
              << "  build             " << FormatDouble(r.build_seconds, 2)
              << " s\n"
              << "  HLI1 load         "
              << FormatDouble(r.hli1_load_cold_s * 1e3, 2) << " ms (warm "
              << FormatDouble(r.hli1_load_warm_s * 1e3, 2)
              << " ms), first query "
              << FormatDouble(r.hli1_first_query_us, 2) << " us\n"
              << "  HLI2 open         "
              << FormatDouble(r.hli2_open_cold_s * 1e3, 2) << " ms (remap "
              << FormatDouble(r.hli2_remap_s * 1e3, 2)
              << " ms), first query "
              << FormatDouble(r.hli2_first_query_us, 2) << " us\n";
    results.push_back(r);
  }

  bool all_agree = true;
  std::string per_size_json;
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    all_agree = all_agree && r.answers_agree;
    per_size_json += std::string(i == 0 ? "" : ",\n") + "    {\"n\": " +
                     std::to_string(r.n) +
                     ", \"entries\": " + std::to_string(r.entries) +
                     ", \"build_seconds\": " +
                     FormatDouble(r.build_seconds, 3) +
                     ", \"hli1_bytes\": " + std::to_string(r.hli1_bytes) +
                     ", \"hli2_bytes\": " + std::to_string(r.hli2_bytes) +
                     ",\n     \"hli1_load_cold_s\": " +
                     FormatDouble(r.hli1_load_cold_s, 6) +
                     ", \"hli1_load_warm_s\": " +
                     FormatDouble(r.hli1_load_warm_s, 6) +
                     ", \"hli1_first_query_us\": " +
                     FormatDouble(r.hli1_first_query_us, 2) +
                     ",\n     \"hli2_open_cold_s\": " +
                     FormatDouble(r.hli2_open_cold_s, 6) +
                     ", \"hli2_remap_s\": " +
                     FormatDouble(r.hli2_remap_s, 6) +
                     ", \"hli2_first_query_us\": " +
                     FormatDouble(r.hli2_first_query_us, 2) +
                     ", \"answers_agree\": " +
                     (r.answers_agree ? "true" : "false") + "}";
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"load\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"avg_degree\": " << FormatDouble(flags.GetDouble("avg-degree"), 2)
      << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"queries_per_format\": " << num_queries << ",\n"
      << "  \"sizes\": [\n" << per_size_json << "\n  ]\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_agree ? 0 : 1;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
