// Figure 9 reproduction: GLP synthetic scalability.
//   (a) |V| fixed, density |E|/|V| swept 2..70 — graph size grows
//       linearly while avg |label| stays small and flattens;
//   (b) |E|/|V| = 20 fixed, |V| swept — avg |label| stays below ~200.
// The paper runs (a) at |V|=10M and (b) up to 30M; the default here is
// laptop-scale (flags --base_vertices/--scale raise it).

#include <cstdio>

#include "bench_common.h"
#include "gen/glp.h"
#include "graph/ranking.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

struct SweepPoint {
  VertexId vertices;
  double density;
};

void RunSweep(const char* title, const std::vector<SweepPoint>& points,
              double budget) {
  std::printf("%s\n", title);
  AsciiTable table({"|V|", "|E|/|V|", "|G| MB", "avg |label|", "iters",
                    "build s"});
  for (const SweepPoint& p : points) {
    GlpOptions glp;
    glp.num_vertices = p.vertices;
    glp.target_avg_degree = p.density;
    glp.seed = 1000 + p.vertices + static_cast<uint64_t>(p.density);
    auto edges = GenerateGlp(glp);
    edges.status().CheckOK();
    auto graph = CsrGraph::FromEdgeList(*edges);
    graph.status().CheckOK();
    RankMapping mapping = ComputeRanking(*graph, RankingPolicy::kDegree);
    auto ranked = RelabelByRank(*graph, mapping);
    ranked.status().CheckOK();

    BuildOptions opts;
    opts.time_budget_seconds = budget;
    auto out = BuildHopLabeling(*ranked, opts);
    if (!out.ok()) {
      table.AddRow({HumanCount(p.vertices), FormatDouble(p.density, 0),
                    Mb(graph->PaperSizeBytes()), AsciiTable::Dash(),
                    AsciiTable::Dash(), AsciiTable::Dash()});
      continue;
    }
    table.AddRow({HumanCount(p.vertices), FormatDouble(p.density, 0),
                  Mb(graph->PaperSizeBytes()),
                  FormatDouble(out->index.AvgLabelSize(), 1),
                  std::to_string(out->stats.num_rule_iterations),
                  FormatDouble(out->stats.total_seconds, 2)});
  }
  table.Print();
  std::printf("\n");
}

int Run(int argc, char** argv) {
  BenchEnv env;
  env.flags.Define("base_vertices", "20000",
                   "|V| for the density sweep (paper: 10M)");
  if (!InitBenchEnv(argc, argv,
                    "fig9_synthetic_scaling: Figure 9 — GLP density and "
                    "size sweeps",
                    &env)) {
    return 0;
  }
  VertexId base = static_cast<VertexId>(
      env.flags.GetUint("base_vertices") * env.scale);

  std::printf("Figure 9: synthetic scale-free scalability (GLP)\n\n");
  std::vector<SweepPoint> density_sweep;
  for (double d : {2.0, 5.0, 10.0, 20.0, 40.0, 70.0}) {
    density_sweep.push_back({base, d});
  }
  RunSweep("(a) |V| fixed, density swept:", density_sweep,
           env.budget_seconds);

  std::vector<SweepPoint> size_sweep;
  for (double f : {0.1, 0.25, 0.5, 1.0, 1.5, 3.0}) {
    size_sweep.push_back(
        {static_cast<VertexId>(static_cast<double>(base) * f), 20.0});
  }
  RunSweep("(b) |E|/|V| = 20, |V| swept:", size_sweep, env.budget_seconds);

  std::printf(
      "Shape check vs paper: graph size grows ~linearly along each sweep\n"
      "while avg |label| stays small and roughly flat (paper: < 200 for\n"
      "all settings), supporting the O(h|V|) index-size bound.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
