// Figure 10 reproduction: per-iteration growth and pruning dynamics on a
// wiki-English stand-in (directed GLP), Hybrid mode.
//
//   growing factor  = candidates generated / previous iteration's new
//                     labels  (paper: ~3-4 during stepping, jumps to
//                     ~25+ after the switch to doubling)
//   pruning factor  = pruned candidates / deduped candidates
//                     (paper: high throughout, up to ~90%)
//   size ratios     = |cand|, |old|, |prev| relative to the final index
//   time ratio      = iteration time / total build time

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  env.flags.Define("dataset", "wikiEng", "dataset to trace");
  env.flags.Define(
      "switch", "3",
      "hybrid switch iteration (the paper uses 10 on its 15-iteration "
      "wikiEng build; the laptop-scale stand-in has a smaller diameter, "
      "so the switch sits at 3 to exhibit both phases)");
  if (!InitBenchEnv(argc, argv,
                    "fig10_growth_pruning: Figure 10 — per-iteration "
                    "growing/pruning factors",
                    &env)) {
    return 0;
  }
  const DatasetSpec* spec = FindDataset(env.flags.GetString("dataset"));
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset\n");
    return 1;
  }
  // The wiki-Eng stand-in is tier 2; scale it to tier-0 cost by default.
  BenchEnv scaled = env;
  if (env.tier < spec->tier && env.dataset_filter.empty() &&
      env.scale == 1.0) {
    scaled.scale = 0.2;
  }
  auto prepared = PrepareDataset(*spec, scaled);
  prepared.status().CheckOK();

  BuildOptions opts;
  opts.mode = BuildMode::kHybrid;
  opts.hybrid_switch_iteration =
      static_cast<uint32_t>(env.flags.GetUint("switch"));
  opts.time_budget_seconds = env.budget_seconds;
  auto out = BuildHopLabeling(prepared->ranked, opts);
  out.status().CheckOK();

  const BuildStats& stats = out->stats;
  const double final_entries =
      static_cast<double>(out->index.TotalEntries());

  std::printf(
      "Figure 10: growth and pruning per iteration — %s stand-in "
      "(|V|=%s, |E|=%s, hybrid switch at %u; the paper switches at 10 "
      "within 15 iterations — the stand-in's smaller diameter compresses "
      "the schedule)\n\n",
      spec->name.c_str(), HumanCount(prepared->ranked.num_vertices()).c_str(),
      HumanCount(prepared->ranked.num_edges()).c_str(),
      opts.hybrid_switch_iteration);

  AsciiTable table({"iter", "mode", "grow fac", "prune fac %",
                    "|cand|/|final| %", "|old|/|final| %",
                    "|prev|/|final| %", "time %"});
  uint64_t prev_new = stats.initial_entries;
  uint64_t old_entries = stats.initial_entries;
  for (const IterationStats& it : stats.iterations) {
    double grow = prev_new == 0 ? 0
                                : static_cast<double>(it.raw_candidates) /
                                      static_cast<double>(prev_new);
    double prune_fac =
        it.deduped_candidates == 0
            ? 0
            : 100.0 * static_cast<double>(it.pruned + it.existing_dropped) /
                  static_cast<double>(it.deduped_candidates);
    table.AddRow(
        {std::to_string(it.iteration), BuildModeName(it.mode_used),
         FormatDouble(grow, 2), FormatDouble(prune_fac, 1),
         FormatDouble(100.0 * static_cast<double>(it.raw_candidates) /
                          final_entries,
                      1),
         FormatDouble(100.0 * static_cast<double>(old_entries) /
                          final_entries,
                      1),
         FormatDouble(100.0 * static_cast<double>(prev_new) / final_entries,
                      1),
         FormatDouble(100.0 * it.seconds /
                          std::max(stats.total_seconds, 1e-9),
                      1)});
    prev_new = it.survivors;
    old_entries = it.total_entries_after;
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: the growing factor sits around the\n"
      "expansion factor (~3-4) while stepping and jumps after the switch\n"
      "to doubling; the pruning factor stays high (up to ~90%%); candidate\n"
      "volume per iteration stays within ~1.5x the final index size.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
