// Build-pipeline scaling bench: wall clock and per-phase breakdown of
// BuildHopLabeling vs. thread count on the 60k-vertex GLP configuration
// of bench_parallel_scaling, doubling as an end-to-end determinism
// check — the serialized index of every thread count must be
// byte-identical (FNV-1a checksum asserted; non-zero exit on mismatch).
//
// Emits machine-readable results to --out (default BENCH_build.json):
// per thread count the build seconds, speedup vs. one thread, and the
// generate/dedup/prune/apply phase seconds, plus peak RSS so build-memory
// regressions are trackable alongside wall clock.
//
//   bench_build            # 60k-vertex GLP (the acceptance setting)
//   bench_build --ci       # seconds-long CI mode, same JSON shape

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "io/temp_dir.h"
#include "labeling/builder.h"
#include "labeling/two_hop_index.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

struct RunResult {
  uint32_t threads = 0;
  double seconds = 0;
  uint64_t checksum = 0;
  uint64_t total_entries = 0;
  std::vector<bench::PhaseTiming> phases;
};

Result<uint64_t> SerializedChecksum(const TwoHopIndex& index,
                                    const TempDir& dir, uint32_t threads) {
  const std::string path =
      dir.File("index_t" + std::to_string(threads) + ".hli");
  HOPDB_RETURN_NOT_OK(index.Save(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot reopen " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return Fnv1a64(bytes.data(), bytes.size());
}

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("n", "60000", "graph vertices (GLP)");
  flags.Define("avg-degree", "10", "graph average degree");
  flags.Define("seed", "2024", "graph seed");
  flags.Define("threads", "1,2,4,8", "comma-separated thread counts");
  flags.Define("out", "BENCH_build.json", "machine-readable output path");
  flags.Define("ci", "false", "CI mode: small graph, short run");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage(
        "bench_build — parallel build-pipeline scaling with per-phase "
        "breakdown and serialized-index determinism check");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const VertexId n = ci ? 8000 : static_cast<VertexId>(flags.GetUint("n"));
  const uint64_t seed = flags.GetUint("seed");
  std::vector<uint32_t> thread_counts;
  for (const std::string& tok : SplitString(flags.GetString("threads"), ',')) {
    thread_counts.push_back(
        static_cast<uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};

  GlpOptions glp;
  glp.num_vertices = n;
  glp.target_avg_degree = flags.GetDouble("avg-degree");
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  if (!edges.ok()) {
    std::cerr << "graph generation failed: " << edges.status() << "\n";
    return 1;
  }
  auto graph = CsrGraph::FromEdgeList(*edges);
  if (!graph.ok()) {
    std::cerr << "graph freeze failed: " << graph.status() << "\n";
    return 1;
  }
  auto ranked = RelabelByRank(*graph,
                              ComputeRanking(*graph, RankingPolicy::kDegree));
  if (!ranked.ok()) {
    std::cerr << "relabel failed: " << ranked.status() << "\n";
    return 1;
  }
  auto tmp = TempDir::Create("bench_build");
  if (!tmp.ok()) {
    std::cerr << "temp dir failed: " << tmp.status() << "\n";
    return 1;
  }

  std::cout << "build scaling over |V|=" << n << " |E|=" << graph->num_edges()
            << " (" << HardwareThreads() << " hardware threads)\n";

  std::vector<RunResult> results;
  for (const uint32_t threads : thread_counts) {
    BuildOptions opts;
    opts.num_threads = threads;
    Stopwatch watch;
    auto built = BuildHopLabeling(*ranked, opts);
    const double seconds = watch.Seconds();
    if (!built.ok()) {
      std::cerr << "build failed at threads=" << threads << ": "
                << built.status() << "\n";
      return 1;
    }
    RunResult r;
    r.threads = threads;
    r.seconds = seconds;
    r.total_entries = built->index.TotalEntries();
    const BuildStats& stats = built->stats;
    r.phases = {
        {"generate", stats.PhaseSeconds(&IterationStats::generate_seconds)},
        {"dedup", stats.PhaseSeconds(&IterationStats::dedup_seconds)},
        {"prune", stats.PhaseSeconds(&IterationStats::prune_seconds)},
        {"apply", stats.PhaseSeconds(&IterationStats::apply_seconds)},
        {"init", stats.init_seconds},
    };
    auto checksum = SerializedChecksum(built->index, *tmp, threads);
    if (!checksum.ok()) {
      std::cerr << "serialize failed: " << checksum.status() << "\n";
      return 1;
    }
    r.checksum = *checksum;
    std::cout << "  threads=" << threads << "  "
              << FormatDouble(seconds, 2) << " s  (gen "
              << FormatDouble(r.phases[0].seconds, 2) << ", dedup "
              << FormatDouble(r.phases[1].seconds, 2) << ", prune "
              << FormatDouble(r.phases[2].seconds, 2) << ", apply "
              << FormatDouble(r.phases[3].seconds, 2) << ")  checksum "
              << r.checksum << "\n";
    results.push_back(std::move(r));
  }

  bool checksums_agree = true;
  for (const RunResult& r : results) {
    if (r.checksum != results[0].checksum ||
        r.total_entries != results[0].total_entries) {
      checksums_agree = false;
    }
  }
  if (!checksums_agree) {
    std::cerr << "FATAL: serialized indexes differ across thread counts "
                 "(determinism violation)\n";
  }

  double base = 0;
  for (const RunResult& r : results) {
    if (r.threads == 1) base = r.seconds;
  }

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"build\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"graph\": {\"type\": \"glp\", \"n\": " << n
      << ", \"avg_degree\": " << FormatDouble(glp.target_avg_degree, 2)
      << ", \"seed\": " << seed << "},\n"
      << "  \"hardware_threads\": " << HardwareThreads() << ",\n"
      << "  \"total_entries\": " << results[0].total_entries << ",\n"
      << "  \"index_checksum\": " << results[0].checksum << ",\n"
      << "  \"checksums_agree\": " << (checksums_agree ? "true" : "false")
      << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"threads\": " << r.threads << ", \"build_seconds\": "
        << FormatDouble(r.seconds, 3) << ", \"speedup_vs_1\": "
        << FormatDouble(base > 0 ? base / r.seconds : 0, 3) << ", "
        << bench::PhasesJson(r.phases) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return checksums_agree ? 0 : 1;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
