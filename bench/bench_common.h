// Shared plumbing for the table/figure reproduction binaries: common
// flags, dataset iteration, ranked-graph preparation, and coverage math.
//
// Every binary runs with NO arguments using the tier-0 datasets at scale
// 1.0 (a few minutes total) and exposes flags to reproduce larger
// settings:
//   --tier N     also run datasets of tier <= N (1..3; big = slow)
//   --scale X    multiply stand-in vertex counts
//   --queries N  query-workload size
//   --budget S   per-method time budget in seconds (0 = unlimited)
//   --data_dir D directory with real "<name>.txt" edge lists (optional)
//   --datasets a,b,c   explicit dataset list (overrides --tier)

#ifndef HOPDB_BENCH_BENCH_COMMON_H_
#define HOPDB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "util/cli.h"
#include "util/status.h"

namespace hopdb {
namespace bench {

struct BenchEnv {
  CliFlags flags;
  int tier = 0;
  double scale = 1.0;
  size_t queries = 10000;
  double budget_seconds = 60.0;
  std::string data_dir;
  std::vector<std::string> dataset_filter;
};

/// Defines the common flags, parses argv, handles --help (returns false
/// to exit), and fills the env.
bool InitBenchEnv(int argc, char** argv, const std::string& description,
                  BenchEnv* env);

/// Datasets selected by the env (tier filter or explicit list).
std::vector<DatasetSpec> SelectDatasets(const BenchEnv& env);

/// A dataset loaded and rank-relabeled, ready for any builder.
struct PreparedGraph {
  DatasetSpec spec;
  CsrGraph ranked;
  uint64_t graph_paper_bytes = 0;
  uint32_t max_degree = 0;
};

Result<PreparedGraph> PrepareDataset(const DatasetSpec& spec,
                                     const BenchEnv& env);

/// Entry-coverage CDF: fraction[i] = share of all label entries whose
/// pivot rank is < checkpoints[i] (as an absolute vertex count).
std::vector<double> PivotCoverage(const std::vector<uint64_t>& per_pivot,
                                  const std::vector<VertexId>& checkpoints);

/// Smallest percentage of top-ranked vertices covering `target` share of
/// entries (Table 7's last three columns).
double PercentForCoverage(const std::vector<uint64_t>& per_pivot,
                          double target);

/// "12.3" style MB rendering of the paper's byte accounting.
std::string Mb(uint64_t bytes);

/// Seconds with adaptive precision, or the DNF dash on error.
std::string SecondsOrDash(const Status& status, double seconds);

// ---------------------------------------------------------------------------
// Machine-readable (BENCH_*.json) resource accounting, shared by every
// JSON-emitting bench so regressions in memory and per-phase time are
// trackable across PRs, not just wall clock.
// ---------------------------------------------------------------------------

/// Peak resident set size of this process in bytes (getrusage ru_maxrss);
/// 0 when the platform doesn't report it.
uint64_t PeakRssBytes();

/// One named phase of a benchmarked pipeline.
struct PhaseTiming {
  std::string name;
  double seconds = 0;
};

/// `"phases": {"gen": 1.23, ...}` — one JSON object line (no trailing
/// comma or newline) for embedding in a bench's JSON output.
std::string PhasesJson(const std::vector<PhaseTiming>& phases);

/// Hardware cache-miss / branch-miss counters over perf_event_open,
/// for attributing layout wins (cacheline blocking) to actual memory
/// behavior rather than wall clock alone. Counting is per-thread
/// (this thread), user-space only.
///
/// Gracefully degrades: available() is false — and Stop() returns
/// zeros — when the kernel forbids the syscall (perf_event_paranoid,
/// seccomp, containers without CAP_PERFMON) or on non-Linux builds.
/// Callers must treat zero readings behind available()==false as "not
/// measured", never as "no misses".
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return cache_fd_ >= 0 && branch_fd_ >= 0; }

  /// Resets both counters to zero and starts counting.
  void Start();

  struct Reading {
    uint64_t cache_misses = 0;
    uint64_t branch_misses = 0;
  };
  /// Stops counting and returns the deltas since Start(). Zeros when
  /// unavailable.
  Reading Stop();

 private:
  int cache_fd_ = -1;
  int branch_fd_ = -1;
};

}  // namespace bench
}  // namespace hopdb

#endif  // HOPDB_BENCH_BENCH_COMMON_H_
