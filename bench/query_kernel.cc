// Query-kernel comparison: the old per-vertex-vector scalar path against
// the flat SoA layout — unblocked and cacheline-blocked — under every
// kernel this CPU supports, on one GLP scale-free graph (default
// |V| = 100k — the acceptance setting).
//
// Variants measured, all answering the same random point-query stream:
//   aos/<kernel>     span-based QueryLabelHalves over vector<LabelVector>
//                    ("aos/scalar" is the pre-flat-store hot path)
//   flat/<kernel>    QueryFlatHalves with the block sidecars stripped —
//                    the pre-blocking flat layout
//   blocked/<kernel> QueryFlatHalves over the blocked arenas (sidecar
//                    skip-scan)
//   hothub/<kernel>  HotHubCache (k=64) dense-table fold + suffix merge
//   stream/<kernel>  CompressedIndex::Query — the kernel's varint
//                    stream leg, no decompression pass
//   index/default    TwoHopIndex::Query as served (blocked + default
//                    kernel)
// plus one OneToManyEngine row timing over the flat bucket arena.
//
// Every variant's distance checksum must agree — the bench doubles as an
// end-to-end bit-identical check — and the JSON written to --out
// (default BENCH_query_kernel.json) records ns/query per variant with
// speedups relative to aos/scalar, plus hardware cache-miss and
// branch-miss rates per query (perf_event_open; -1 when the kernel
// forbids counting) so blocking wins are attributable to memory
// behavior.
//
//   bench_query_kernel            # 100k-vertex GLP, ~200k queries
//   bench_query_kernel --ci       # small graph + regression gate:
//                                 # exits nonzero unless checksums agree
//                                 # and blocked is no slower than flat

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "labeling/builder.h"
#include "labeling/compressed_index.h"
#include "labeling/flat_label_store.h"
#include "labeling/hot_hub.h"
#include "labeling/query_kernel.h"
#include "labeling/two_hop_index.h"
#include "query/batch.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

struct VariantResult {
  std::string name;
  double ns_per_query = 0;
  uint64_t checksum = 0;
  double cache_misses_per_query = -1;   // -1 = counters unavailable
  double branch_misses_per_query = -1;
};

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("n", "100000", "graph vertices (GLP)");
  flags.Define("avg-degree", "8", "graph average degree");
  flags.Define("seed", "7", "graph + workload seed");
  flags.Define("queries", "200000", "random point queries per variant");
  flags.Define("threads", "0", "builder threads (0 = all cores)");
  flags.Define("hot-hub-k", "64", "hot-hub cache pivot count");
  flags.Define("out", "BENCH_query_kernel.json",
               "machine-readable output path");
  flags.Define("ci", "false",
               "CI mode: small graph, short run, blocked>=flat gate");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage(
        "bench_query_kernel — blocked/flat/compressed SIMD query kernels "
        "vs the old per-vertex-vector scalar path");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const VertexId n = ci ? 20000 : static_cast<VertexId>(flags.GetUint("n"));
  const size_t num_queries =
      ci ? 50000 : static_cast<size_t>(flags.GetUint("queries"));
  const uint64_t seed = flags.GetUint("seed");
  const uint32_t hot_hub_k = static_cast<uint32_t>(flags.GetUint("hot-hub-k"));

  GlpOptions glp;
  glp.num_vertices = n;
  glp.target_avg_degree = flags.GetDouble("avg-degree");
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  if (!edges.ok()) {
    std::cerr << "graph generation failed: " << edges.status() << "\n";
    return 1;
  }
  auto graph = CsrGraph::FromEdgeList(*edges);
  if (!graph.ok()) {
    std::cerr << "graph freeze failed: " << graph.status() << "\n";
    return 1;
  }
  auto ranked = RelabelByRank(*graph,
                              ComputeRanking(*graph, RankingPolicy::kDegree));
  if (!ranked.ok()) {
    std::cerr << "relabel failed: " << ranked.status() << "\n";
    return 1;
  }

  BuildOptions build;
  build.num_threads = static_cast<uint32_t>(flags.GetUint("threads"));
  std::cout << "building labels over |V|=" << n
            << " |E|=" << graph->num_edges() << " ..." << std::flush;
  Stopwatch build_watch;
  auto built = BuildHopLabeling(*ranked, build);
  if (!built.ok()) {
    std::cerr << "\nbuild failed: " << built.status() << "\n";
    return 1;
  }
  const double build_seconds = build_watch.Seconds();
  const TwoHopIndex index = std::move(built->index);
  const FlatLabelStore& flat = index.flat_store();
  std::cout << " done in " << FormatDouble(build_seconds, 1) << "s, avg |label| "
            << FormatDouble(index.AvgLabelSize(), 1) << "\n";

  // The same arenas through the pre-blocking lens: stripping the
  // sidecars makes QueryFlatHalves take the unblocked merge leg.
  const FlatLabelStore::LabelSetView blocked_view = flat.view();
  FlatLabelStore::LabelSetView flat_view = blocked_view;
  flat_view.block_min = nullptr;
  flat_view.block_max = nullptr;

  const HotHubCache hub = HotHubCache::Build(blocked_view, hot_hub_k);
  auto compressed = CompressedIndex::FromIndex(index);
  if (!compressed.ok()) {
    std::cerr << "compression failed: " << compressed.status() << "\n";
    return 1;
  }

  const std::vector<QueryPair> pairs = RandomPairs(n, num_queries, seed + 1);
  bench::PerfCounters counters;
  if (!counters.available()) {
    std::cout << "  (hardware counters unavailable — ns/query only)\n";
  }

  // One warmup + one timed pass per variant; the checksum (sum of all
  // distances, inf counted as-is) must be identical across variants.
  auto run_variant = [&](const std::string& name, auto&& query_fn) {
    VariantResult result;
    result.name = name;
    uint64_t sink = 0;
    const size_t warmup = std::min<size_t>(pairs.size(), 4096);
    for (size_t i = 0; i < warmup; ++i) {
      sink += query_fn(pairs[i].s, pairs[i].t);
    }
    sink = 0;
    counters.Start();
    Stopwatch watch;
    for (const QueryPair& p : pairs) sink += query_fn(p.s, p.t);
    const double seconds = watch.Seconds();
    const bench::PerfCounters::Reading hw = counters.Stop();
    const double per = static_cast<double>(pairs.size());
    result.ns_per_query = seconds * 1e9 / per;
    result.checksum = sink;
    if (counters.available()) {
      result.cache_misses_per_query =
          static_cast<double>(hw.cache_misses) / per;
      result.branch_misses_per_query =
          static_cast<double>(hw.branch_misses) / per;
    }
    std::cout << "  " << name
              << std::string(18 - std::min<size_t>(17, name.size()), ' ')
              << FormatDouble(result.ns_per_query, 1) << " ns/query";
    if (counters.available()) {
      std::cout << "  cm/q " << FormatDouble(result.cache_misses_per_query, 2)
                << "  bm/q "
                << FormatDouble(result.branch_misses_per_query, 2);
    }
    std::cout << "\n";
    return result;
  };

  std::vector<VariantResult> results;
  const std::string default_kernel = ActiveQueryKernel().name;
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    SetActiveQueryKernel(kernel->name);
    // The pre-flat-store hot path: per-vertex heap vectors, AoS merge.
    results.push_back(run_variant(
        std::string("aos/") + kernel->name, [&](VertexId s, VertexId t) {
          return QueryLabelHalves(index.OutLabel(s), index.InLabel(t), s, t);
        }));
  }
  double flat_total_ns = 0;
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    const VariantResult r = run_variant(
        std::string("flat/") + kernel->name, [&](VertexId s, VertexId t) {
          return QueryFlatHalves(flat_view.Out(s), flat_view.In(t), s, t,
                                 *kernel);
        });
    flat_total_ns += r.ns_per_query;
    results.push_back(r);
  }
  double blocked_total_ns = 0;
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    const VariantResult r = run_variant(
        std::string("blocked/") + kernel->name, [&](VertexId s, VertexId t) {
          return QueryFlatHalves(blocked_view.Out(s), blocked_view.In(t), s,
                                 t, *kernel);
        });
    blocked_total_ns += r.ns_per_query;
    results.push_back(r);
  }
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    results.push_back(run_variant(
        std::string("hothub/") + kernel->name, [&](VertexId s, VertexId t) {
          return hub.Query(blocked_view, s, t, *kernel);
        }));
  }
  for (const QueryKernel* kernel : SupportedQueryKernels()) {
    SetActiveQueryKernel(kernel->name);
    results.push_back(run_variant(
        std::string("stream/") + kernel->name, [&](VertexId s, VertexId t) {
          return compressed->Query(s, t);
        }));
  }
  SetActiveQueryKernel(default_kernel);
  results.push_back(run_variant("index/default", [&](VertexId s, VertexId t) {
    return index.Query(s, t);
  }));

  bool checksums_agree = true;
  for (const VariantResult& r : results) {
    if (r.checksum != results[0].checksum) checksums_agree = false;
  }
  if (!checksums_agree) {
    std::cerr << "FATAL: variants disagree on the distance checksum\n";
  }

  // The CI regression gate: blocking must never cost throughput
  // (summed across kernels to damp single-variant noise).
  const double blocked_vs_flat =
      blocked_total_ns > 0 ? flat_total_ns / blocked_total_ns : 0;
  bool gate_ok = true;
  if (ci) {
    if (blocked_vs_flat < 1.0) {
      std::cerr << "CI gate FAILED: blocked/flat speedup "
                << FormatDouble(blocked_vs_flat, 3) << " < 1.0\n";
      gate_ok = false;
    } else {
      std::cout << "  CI gate: blocked/flat speedup "
                << FormatDouble(blocked_vs_flat, 3) << " >= 1.0\n";
    }
  }

  // One-to-many row over the flat bucket arena (kernel-independent).
  double one_to_many_us = 0;
  {
    Rng rng(seed + 2);
    std::vector<VertexId> targets;
    for (int i = 0; i < 256; ++i) {
      targets.push_back(static_cast<VertexId>(rng.Below(n)));
    }
    OneToManyEngine engine(index, std::move(targets));
    const size_t rows = std::min<size_t>(pairs.size(), 2000);
    uint64_t sink = 0;
    Stopwatch watch;
    for (size_t i = 0; i < rows; ++i) {
      for (Distance d : engine.Query(pairs[i].s)) sink += d;
    }
    one_to_many_us = watch.Seconds() * 1e6 / static_cast<double>(rows);
    std::cout << "  one-to-many row (256 targets): "
              << FormatDouble(one_to_many_us, 1) << " us  [sink "
              << (sink & 0xff) << "]\n";
  }

  const double base = results.empty() ? 0 : results[0].ns_per_query;
  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"query_kernel\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"graph\": {\"type\": \"glp\", \"n\": " << n
      << ", \"avg_degree\": " << FormatDouble(glp.target_avg_degree, 2)
      << ", \"seed\": " << seed << "},\n"
      << "  \"avg_label\": " << FormatDouble(index.AvgLabelSize(), 2) << ",\n"
      << "  \"build_seconds\": " << FormatDouble(build_seconds, 2) << ",\n"
      << "  \"queries\": " << pairs.size() << ",\n"
      << "  \"default_kernel\": \"" << default_kernel << "\",\n"
      << "  \"hot_hub_k\": " << hub.k() << ",\n"
      << "  \"hot_hub_bytes\": " << hub.SizeBytes() << ",\n"
      << "  \"compressed_bytes\": " << compressed->SizeBytes() << ",\n"
      << "  \"perf_counters_available\": "
      << (counters.available() ? "true" : "false") << ",\n"
      << "  \"checksums_agree\": " << (checksums_agree ? "true" : "false")
      << ",\n"
      << "  \"blocked_vs_flat_speedup\": " << FormatDouble(blocked_vs_flat, 3)
      << ",\n"
      << "  \"one_to_many_row_us\": " << FormatDouble(one_to_many_us, 2)
      << ",\n"
      << "  \"variants\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const VariantResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ns_per_query\": "
        << FormatDouble(r.ns_per_query, 1) << ", \"speedup_vs_aos_scalar\": "
        << FormatDouble(base > 0 ? base / r.ns_per_query : 0, 3)
        << ", \"cache_misses_per_query\": "
        << FormatDouble(r.cache_misses_per_query, 2)
        << ", \"branch_misses_per_query\": "
        << FormatDouble(r.branch_misses_per_query, 2) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return checksums_agree && gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
