// Thread-scaling study of the label construction (BuildOptions::
// num_threads).
//
// The paper's builders are sequential; its scalability story is I/O
// shaped. This ablation measures the natural shared-memory extension:
// all four per-iteration phases — generation, owner-partitioned dedup,
// SIMD witness pruning, and partitioned label merging — are
// data-parallel (the test suite proves bit-identical output for every
// thread count), so scaling is bounded by partition skew and the few
// O(n) sequential seams (prefix sums, inverted-list replay) rather than
// whole sequential phases. bench_build records the per-phase breakdown.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "gen/glp.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "Build-time thread scaling on GLP graphs "
                    "(candidate generation + pruning parallelized).",
                    &env)) {
    return 0;
  }

  struct Family {
    const char* label;
    bool directed;
  };
  for (const Family family : {Family{"undirected", false},
                              Family{"directed", true}}) {
    GlpOptions glp;
    glp.num_vertices = static_cast<VertexId>(60000 * env.scale);
    glp.target_avg_degree = 10;
    glp.seed = 2024;
    EdgeList edges = family.directed
                         ? GenerateDirectedGlp(glp).ValueOrDie()
                         : GenerateGlp(glp).ValueOrDie();
    auto base = CsrGraph::FromEdgeList(edges);
    base.status().CheckOK();
    auto ranked = RelabelByRank(
        *base, ComputeRanking(*base, family.directed
                                         ? RankingPolicy::kInOutProduct
                                         : RankingPolicy::kDegree));
    ranked.status().CheckOK();

    std::printf("%s GLP: |V|=%u |E|=%llu (%u hardware threads)\n",
                family.label, ranked->num_vertices(),
                static_cast<unsigned long long>(ranked->num_edges()),
                HardwareThreads());
    AsciiTable table({"threads", "build s", "speedup", "entries"});
    double baseline = 0;
    for (const uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
      if (threads > 2 * HardwareThreads()) break;
      BuildOptions opts;
      opts.num_threads = threads;
      opts.time_budget_seconds = env.budget_seconds;
      Stopwatch watch;
      auto built = BuildHopLabeling(*ranked, opts);
      const double seconds = watch.Seconds();
      if (!built.ok()) {
        table.AddRow({std::to_string(threads),
                      SecondsOrDash(built.status(), seconds), "—", "—"});
        continue;
      }
      if (threads == 1) baseline = seconds;
      table.AddRow({std::to_string(threads), FormatDouble(seconds, 2),
                    baseline > 0 ? FormatDouble(baseline / seconds, 2) + "x"
                                 : "—",
                    std::to_string(built->index.TotalEntries())});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Reading: identical entry counts for every thread count "
      "(determinism). All four\nphases are parallel; residual "
      "saturation comes from partition skew and memory\nbandwidth, not "
      "a sequential phase (see BENCH_build.json for the breakdown).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Main(argc, argv); }
