#include "bench_common.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

#include "util/logging.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {

bool InitBenchEnv(int argc, char** argv, const std::string& description,
                  BenchEnv* env) {
  env->flags.Define("tier", "0", "include datasets up to this tier (0-3)");
  env->flags.Define("scale", "1.0", "stand-in size multiplier");
  env->flags.Define("queries", "10000", "query workload size");
  env->flags.Define("budget", "60",
                    "per-method time budget in seconds (0 = unlimited)");
  env->flags.Define("data_dir", "",
                    "directory with real <name>.txt edge lists");
  env->flags.Define("datasets", "",
                    "comma-separated dataset names (overrides --tier)");
  Status st = env->flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 env->flags.Usage(description).c_str());
    return false;
  }
  if (env->flags.help_requested()) {
    std::fprintf(stdout, "%s", env->flags.Usage(description).c_str());
    return false;
  }
  env->tier = static_cast<int>(env->flags.GetInt("tier"));
  env->scale = env->flags.GetDouble("scale");
  env->queries = env->flags.GetUint("queries");
  env->budget_seconds = env->flags.GetDouble("budget");
  env->data_dir = env->flags.GetString("data_dir");
  std::string names = env->flags.GetString("datasets");
  if (!names.empty()) {
    env->dataset_filter = SplitString(names, ',');
  }
  return true;
}

std::vector<DatasetSpec> SelectDatasets(const BenchEnv& env) {
  std::vector<DatasetSpec> out;
  if (!env.dataset_filter.empty()) {
    for (const std::string& name : env.dataset_filter) {
      const DatasetSpec* spec = FindDataset(name);
      if (spec == nullptr) {
        HOPDB_LOG(Fatal) << "unknown dataset: " << name;
      }
      out.push_back(*spec);
    }
    return out;
  }
  for (const DatasetSpec& spec : Table6Datasets()) {
    if (spec.tier <= env.tier) out.push_back(spec);
  }
  return out;
}

Result<PreparedGraph> PrepareDataset(const DatasetSpec& spec,
                                     const BenchEnv& env) {
  LoadOptions load;
  load.scale = env.scale;
  load.data_dir = env.data_dir;
  HOPDB_ASSIGN_OR_RETURN(CsrGraph graph, LoadDataset(spec, load));
  RankMapping mapping = ComputeRanking(
      graph, graph.directed() ? RankingPolicy::kInOutProduct
                              : RankingPolicy::kDegree);
  PreparedGraph prepared;
  prepared.spec = spec;
  prepared.graph_paper_bytes = graph.PaperSizeBytes();
  prepared.max_degree = graph.MaxDegree();
  HOPDB_ASSIGN_OR_RETURN(prepared.ranked, RelabelByRank(graph, mapping));
  return prepared;
}

std::vector<double> PivotCoverage(const std::vector<uint64_t>& per_pivot,
                                  const std::vector<VertexId>& checkpoints) {
  uint64_t total = 0;
  for (uint64_t c : per_pivot) total += c;
  std::vector<double> out;
  out.reserve(checkpoints.size());
  uint64_t sum = 0;
  size_t next = 0;
  for (VertexId v = 0; v <= per_pivot.size(); ++v) {
    while (next < checkpoints.size() && checkpoints[next] == v) {
      out.push_back(total == 0 ? 1.0
                               : static_cast<double>(sum) /
                                     static_cast<double>(total));
      ++next;
    }
    if (v < per_pivot.size()) sum += per_pivot[v];
  }
  while (next++ < checkpoints.size()) out.push_back(1.0);
  return out;
}

double PercentForCoverage(const std::vector<uint64_t>& per_pivot,
                          double target) {
  uint64_t total = 0;
  for (uint64_t c : per_pivot) total += c;
  if (total == 0 || per_pivot.empty()) return 0.0;
  uint64_t goal = static_cast<uint64_t>(target * static_cast<double>(total));
  uint64_t sum = 0;
  for (VertexId v = 0; v < per_pivot.size(); ++v) {
    sum += per_pivot[v];
    if (sum >= goal) {
      return 100.0 * static_cast<double>(v + 1) /
             static_cast<double>(per_pivot.size());
    }
  }
  return 100.0;
}

std::string Mb(uint64_t bytes) {
  double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (mb >= 100) return FormatDouble(mb, 0);
  if (mb >= 1) return FormatDouble(mb, 1);
  return FormatDouble(mb, 2);
}

std::string SecondsOrDash(const Status& status, double seconds) {
  if (!status.ok()) return AsciiTable::Dash();
  return FormatDouble(seconds, seconds < 10 ? 2 : 1);
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::string PhasesJson(const std::vector<PhaseTiming>& phases) {
  std::string out = "\"phases\": {";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + phases[i].name + "\": " + FormatDouble(phases[i].seconds, 3);
  }
  out += "}";
  return out;
}

#if defined(__linux__)
namespace {

int OpenHardwareCounter(uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // user-space only; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid bar in containers
  return static_cast<int>(syscall(SYS_perf_event_open, &attr,
                                  /*pid=*/0, /*cpu=*/-1,
                                  /*group_fd=*/-1, /*flags=*/0UL));
}

uint64_t ReadCounter(int fd) {
  uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  cache_fd_ = OpenHardwareCounter(PERF_COUNT_HW_CACHE_MISSES);
  branch_fd_ = OpenHardwareCounter(PERF_COUNT_HW_BRANCH_MISSES);
  if (cache_fd_ < 0 || branch_fd_ < 0) {
    // All-or-nothing: a half-available pair would skew comparisons.
    if (cache_fd_ >= 0) close(cache_fd_);
    if (branch_fd_ >= 0) close(branch_fd_);
    cache_fd_ = branch_fd_ = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (cache_fd_ >= 0) close(cache_fd_);
  if (branch_fd_ >= 0) close(branch_fd_);
}

void PerfCounters::Start() {
  if (!available()) return;
  ioctl(cache_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(branch_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(cache_fd_, PERF_EVENT_IOC_ENABLE, 0);
  ioctl(branch_fd_, PERF_EVENT_IOC_ENABLE, 0);
}

PerfCounters::Reading PerfCounters::Stop() {
  Reading reading;
  if (!available()) return reading;
  ioctl(cache_fd_, PERF_EVENT_IOC_DISABLE, 0);
  ioctl(branch_fd_, PERF_EVENT_IOC_DISABLE, 0);
  reading.cache_misses = ReadCounter(cache_fd_);
  reading.branch_misses = ReadCounter(branch_fd_);
  return reading;
}
#else
PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
PerfCounters::Reading PerfCounters::Stop() { return Reading(); }
#endif

}  // namespace bench
}  // namespace hopdb
