// Incremental-update benchmark: the cost of repairing a hop-doubling
// label index in place versus rebuilding it from scratch, on a GLP
// scale-free graph (the paper's synthetic family).
//
// The pipeline: generate a GLP graph, build the initial index, then
// apply a randomized insert/delete stream one op at a time through
// IncrementalUpdater, timing every repair. Afterwards the mutated graph
// is rebuilt from scratch with the same builder and the two indexes are
// compared: sampled pairs must agree bit-for-bit, and a handful of full
// Dijkstra rows anchor both against ground truth. The JSON records
// per-update latency percentiles, the full-rebuild time, and their
// ratio — the "is online repair worth it" number:
//
//   {"repair": {"mean_us": ..., "p50_us": ..., "p99_us": ...},
//    "rebuild_seconds": ..., "speedup_mean": ..., "answers_equal": true}
//
// Exit is nonzero when any sampled answer disagrees (the correctness
// gate CI runs with) or when --min-speedup is set and not met.
//
//   bench_update            # 60k vertices, avg degree 8, 1000 ops
//   bench_update --ci       # small/short CI variant

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "graph/csr_graph.h"
#include "graph/ranking.h"
#include "hopdb.h"
#include "labeling/builder.h"
#include "labeling/incremental.h"
#include "search/dijkstra.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace {

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

int Run(int argc, char** argv) {
  CliFlags flags;
  flags.Define("n", "60000", "graph vertices (GLP)");
  flags.Define("avg-degree", "8", "graph average degree");
  flags.Define("seed", "1", "graph + op-stream seed");
  flags.Define("ops", "1000", "applied update operations");
  flags.Define("weighted", "false", "use uniform random weights in [1,9]");
  flags.Define("check-pairs", "50000",
               "random pairs compared between repaired and rebuilt index");
  flags.Define("oracle-rows", "8",
               "full Dijkstra rows anchoring both indexes to ground truth");
  flags.Define("min-speedup", "0",
               "fail unless rebuild/mean-repair exceeds this (0 = report "
               "only)");
  flags.Define("out", "BENCH_update.json", "machine-readable output path");
  flags.Define("ci", "false", "CI mode: 6000 vertices, 200 ops");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) {
    std::cout << flags.Usage(
        "bench_update — incremental label repair vs full rebuild");
    return flags.help_requested() ? 0 : 1;
  }

  const bool ci = flags.GetBool("ci");
  const VertexId n = ci ? 6000 : static_cast<VertexId>(flags.GetUint("n"));
  const int target_ops =
      ci ? 200 : static_cast<int>(flags.GetUint("ops"));
  const uint64_t seed = flags.GetUint("seed");
  const bool weighted = flags.GetBool("weighted");

  GlpOptions glp;
  glp.num_vertices = n;
  glp.target_avg_degree = flags.GetDouble("avg-degree");
  glp.seed = seed;
  auto edges = GenerateGlp(glp);
  if (!edges.ok()) {
    std::cerr << "graph generation failed: " << edges.status() << "\n";
    return 1;
  }
  if (weighted) AssignUniformWeights(&*edges, 1, 9, DeriveSeed(seed, 1));

  auto graph = CsrGraph::FromEdgeList(*edges);
  if (!graph.ok()) {
    std::cerr << "graph load failed: " << graph.status() << "\n";
    return 1;
  }
  const RankMapping mapping =
      ComputeRanking(*graph, RankingPolicy::kDegree);
  auto ranked = RelabelByRank(*graph, mapping);
  if (!ranked.ok()) {
    std::cerr << "relabel failed: " << ranked.status() << "\n";
    return 1;
  }

  const BuildOptions build;
  Stopwatch build_watch;
  auto built = BuildHopLabeling(*ranked, build);
  if (!built.ok()) {
    std::cerr << "index build failed: " << built.status() << "\n";
    return 1;
  }
  const double build_seconds = build_watch.Seconds();
  std::cout << "built |V|=" << n << " |E|=" << edges->num_edges()
            << " in " << FormatDouble(build_seconds, 2) << "s, "
            << built->index.TotalEntries() << " label entries\n";

  // --- Update stream, one timed repair per applied op.
  TwoHopIndex index = std::move(built->index);
  DynamicGraph dynamic = DynamicGraph::FromGraph(*ranked);
  IncrementalUpdater updater(&dynamic, &index);

  // Live edge set (internal ids) so deletes hit existing edges — a
  // random vertex pair is almost never an edge in a sparse graph.
  std::vector<std::pair<VertexId, VertexId>> live;
  const EdgeList initial_edges = dynamic.ToEdgeList();
  for (const Edge& e : initial_edges.edges()) {
    live.push_back({e.src, e.dst});
  }

  Rng rng(DeriveSeed(seed, 2));
  std::vector<double> latencies_us, insert_us, delete_us;
  latencies_us.reserve(target_ops);
  Stopwatch stream_watch;
  while (static_cast<int>(latencies_us.size()) < target_ops) {
    UpdateOp op;
    if (!live.empty() && rng.Chance(0.5)) {
      const size_t pick = rng.Below(live.size());
      op.kind = UpdateOp::Kind::kDelEdge;
      op.u = live[pick].first;
      op.v = live[pick].second;
      live[pick] = live.back();
      live.pop_back();
    } else {
      const VertexId u = static_cast<VertexId>(rng.Below(n));
      const VertexId v = static_cast<VertexId>(rng.Below(n));
      if (u == v || dynamic.ArcWeight(u, v) != kInfDistance) continue;
      op.kind = UpdateOp::Kind::kAddEdge;
      op.u = u;
      op.v = v;
      op.weight =
          weighted ? static_cast<Distance>(rng.Uniform(1, 9)) : 1;
      live.push_back({u, v});
    }
    Stopwatch op_watch;
    auto changed = updater.Apply(op);
    if (!changed.ok()) {
      std::cerr << "update failed: " << changed.status() << "\n";
      return 1;
    }
    if (!*changed) continue;
    const double us = op_watch.Seconds() * 1e6;
    latencies_us.push_back(us);
    (op.kind == UpdateOp::Kind::kAddEdge ? insert_us : delete_us)
        .push_back(us);
  }
  Stopwatch finalize_watch;
  updater.Finalize();
  const double finalize_seconds = finalize_watch.Seconds();
  const double stream_seconds = stream_watch.Seconds();
  const UpdateStats& stats = updater.stats();

  const auto mean_of = [](const std::vector<double>& v) {
    double sum = 0;
    for (const double us : v) sum += us;
    return v.empty() ? 0.0 : sum / v.size();
  };
  const double mean_us = mean_of(latencies_us);
  const double insert_mean_us = mean_of(insert_us);
  const double delete_mean_us = mean_of(delete_us);
  const size_t inserts = insert_us.size(), deletes = delete_us.size();
  const double p50_us = Percentile(&latencies_us, 0.50);
  const double p99_us = Percentile(&latencies_us, 0.99);
  const double max_us = latencies_us.empty() ? 0 : latencies_us.back();
  std::cout << target_ops << " ops (" << inserts << " insert, " << deletes
            << " delete) in " << FormatDouble(stream_seconds, 2)
            << "s: mean " << FormatDouble(mean_us, 1) << " us (insert "
            << FormatDouble(insert_mean_us, 1) << ", delete "
            << FormatDouble(delete_mean_us, 1) << "), p50 "
            << FormatDouble(p50_us, 1) << " us, p99 "
            << FormatDouble(p99_us, 1) << " us\n";

  // --- The alternative: rebuild from scratch on the mutated graph.
  auto mutated = CsrGraph::FromEdgeList(dynamic.ToEdgeList());
  if (!mutated.ok()) {
    std::cerr << "mutated graph load failed: " << mutated.status() << "\n";
    return 1;
  }
  Stopwatch rebuild_watch;
  auto rebuilt = BuildHopLabeling(*mutated, build);
  if (!rebuilt.ok()) {
    std::cerr << "rebuild failed: " << rebuilt.status() << "\n";
    return 1;
  }
  const double rebuild_seconds = rebuild_watch.Seconds();
  const double speedup =
      mean_us > 0 ? rebuild_seconds / (mean_us / 1e6) : 0;
  std::cout << "full rebuild: " << FormatDouble(rebuild_seconds, 2)
            << "s — mean repair is " << FormatDouble(speedup, 0)
            << "x faster\n";

  // --- Correctness gate: repaired vs rebuilt on sampled pairs, both
  // vs the Dijkstra oracle on a few full rows.
  uint64_t checked = 0, mismatches = 0;
  Rng check_rng(DeriveSeed(seed, 3));
  const uint64_t check_pairs = flags.GetUint("check-pairs");
  for (uint64_t i = 0; i < check_pairs; ++i) {
    const VertexId s = static_cast<VertexId>(check_rng.Below(n));
    const VertexId t = static_cast<VertexId>(check_rng.Below(n));
    ++checked;
    if (index.Query(s, t) != rebuilt->index.Query(s, t)) ++mismatches;
  }
  const uint64_t oracle_rows = flags.GetUint("oracle-rows");
  for (uint64_t row = 0; row < oracle_rows; ++row) {
    const VertexId s = static_cast<VertexId>(check_rng.Below(n));
    const std::vector<Distance> truth = ExactDistances(*mutated, s);
    for (VertexId t = 0; t < n; ++t) {
      ++checked;
      if (index.Query(s, t) != truth[t]) ++mismatches;
      if (rebuilt->index.Query(s, t) != truth[t]) ++mismatches;
    }
  }
  const bool answers_equal = mismatches == 0;
  std::cout << (answers_equal ? "answers agree on " : "MISMATCHES on ")
            << checked << " checked pairs"
            << (answers_equal ? "" : " (" + std::to_string(mismatches) +
                                         " wrong)")
            << "\n";

  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"update\",\n"
      << "  \"ci_mode\": " << (ci ? "true" : "false") << ",\n"
      << "  \"peak_rss_bytes\": " << bench::PeakRssBytes() << ",\n"
      << "  \"graph\": {\"type\": \"glp\", \"n\": " << n
      << ", \"avg_degree\": " << FormatDouble(glp.target_avg_degree, 2)
      << ", \"edges\": " << edges->num_edges() << ", \"weighted\": "
      << (weighted ? "true" : "false") << ", \"seed\": " << seed << "},\n"
      << "  \"build_seconds\": " << FormatDouble(build_seconds, 3) << ",\n"
      << "  \"ops\": {\"applied\": " << target_ops << ", \"inserts\": "
      << inserts << ", \"deletes\": " << deletes << ", \"repairs\": "
      << stats.repairs << ", \"full_rebuilds\": " << stats.full_rebuilds
      << "},\n"
      << "  \"entries\": {\"added\": " << stats.entries_added
      << ", \"updated\": " << stats.entries_updated << ", \"removed\": "
      << stats.entries_removed << ", \"total\": " << index.TotalEntries()
      << "},\n"
      << "  \"repair\": {\"mean_us\": " << FormatDouble(mean_us, 1)
      << ", \"insert_mean_us\": " << FormatDouble(insert_mean_us, 1)
      << ", \"delete_mean_us\": " << FormatDouble(delete_mean_us, 1)
      << ", \"p50_us\": " << FormatDouble(p50_us, 1) << ", \"p99_us\": "
      << FormatDouble(p99_us, 1) << ", \"max_us\": "
      << FormatDouble(max_us, 1) << ", \"stream_seconds\": "
      << FormatDouble(stream_seconds, 3) << ", \"finalize_seconds\": "
      << FormatDouble(finalize_seconds, 3) << "},\n"
      << "  \"rebuild_seconds\": " << FormatDouble(rebuild_seconds, 3)
      << ",\n"
      << "  \"speedup_mean\": " << FormatDouble(speedup, 1) << ",\n"
      << "  \"checked_pairs\": " << checked << ",\n"
      << "  \"answers_equal\": " << (answers_equal ? "true" : "false")
      << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  const double min_speedup = flags.GetDouble("min-speedup");
  if (!answers_equal) return 1;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::cerr << "speedup " << FormatDouble(speedup, 1) << " below gate "
              << FormatDouble(min_speedup, 1) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::Run(argc, argv); }
