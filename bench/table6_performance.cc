// Table 6 reproduction: index size, indexing time, in-memory query time
// and disk query time for BIDIJ, IS-Label, PLL, and HopDb across the
// dataset registry (GLP stand-ins for the paper's SNAP/KONECT graphs —
// see DESIGN.md §4). "—" marks DNF (budget or resource cap), matching
// the paper's 24-hour-cutoff dashes.
//
// Expected shape vs the paper:
//   * HopDb index is smaller than IS-Label's and no bigger than PLL's;
//   * HopDb/PLL memory queries run in ~0.1-10us, BIDIJ 2-4 orders slower;
//   * IS-Label DNFs (growth cap) on the denser graphs;
//   * disk queries cost ~2 label reads (ms on the paper's HDD).

#include <cstdio>

#include "baselines/is_label.h"
#include "baselines/pll.h"
#include "bench_common.h"
#include "eval/workload.h"
#include "io/temp_dir.h"
#include "labeling/disk_index.h"
#include "search/bidirectional.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace bench {
namespace {

struct MethodResult {
  Status status = Status::OK();
  double build_seconds = 0;
  uint64_t index_bytes = 0;
  double query_micros = -1;
  double disk_query_ms = -1;
  double disk_blocks_per_query = -1;
  uint64_t checksum = 0;
};

std::string MicrosOrDash(const MethodResult& r) {
  if (!r.status.ok() || r.query_micros < 0) return AsciiTable::Dash();
  return FormatDouble(r.query_micros, 2);
}

std::string MsOrDash(const MethodResult& r) {
  if (!r.status.ok() || r.disk_query_ms < 0) return AsciiTable::Dash();
  return FormatDouble(r.disk_query_ms, 3);
}

std::string SizeOrDash(const MethodResult& r) {
  if (!r.status.ok()) return AsciiTable::Dash();
  return Mb(r.index_bytes);
}

/// Measures disk-resident querying for an index: average ms/query and
/// logical blocks/query.
void MeasureDiskQueries(const TwoHopIndex& index, const TempDir& dir,
                        const std::string& name,
                        const std::vector<QueryPair>& pairs,
                        MethodResult* result) {
  std::string path = dir.File(name);
  if (!DiskIndex::Write(index, path).ok()) return;
  auto disk = DiskIndex::Open(path);
  if (!disk.ok()) return;
  size_t n = std::min<size_t>(pairs.size(), 2000);
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    disk->Query(pairs[i].s, pairs[i].t);
  }
  result->disk_query_ms = watch.Seconds() * 1e3 / static_cast<double>(n);
  result->disk_blocks_per_query =
      static_cast<double>(disk->stats().blocks_read) /
      static_cast<double>(n);
}

int Run(int argc, char** argv) {
  BenchEnv env;
  env.flags.Define("is_budget", "180",
                   "IS-Label build budget in seconds (it needs longer than "
                   "the others; the paper gave every method 24h)");
  if (!InitBenchEnv(argc, argv,
                    "table6_performance: Table 6 — BIDIJ/IS-Label/PLL/HopDb "
                    "index size, build time, query time",
                    &env)) {
    return 0;
  }
  const double is_budget = env.flags.GetDouble("is_budget");
  auto scratch = TempDir::Create("table6");
  scratch.status().CheckOK();

  std::printf(
      "Table 6: performance comparison on complete 2-hop indexing\n"
      "(GLP stand-ins; paper-scale |V|,|E| in DESIGN.md; budget %.0fs)\n\n",
      env.budget_seconds);

  AsciiTable table(
      {"G", "|V|", "|E|", "maxdeg", "|G|MB",
       "idx MB IS", "idx MB PLL", "idx MB HopDb",
       "build s IS", "build s PLL", "build s HopDb",
       "mem q us BIDIJ", "mem q us IS", "mem q us PLL", "mem q us HopDb",
       "disk q ms IS", "disk q ms HopDb", "blk/q HopDb"});

  std::string current_group;
  for (const DatasetSpec& spec : SelectDatasets(env)) {
    auto prepared = PrepareDataset(spec, env);
    if (!prepared.ok()) {
      std::fprintf(stderr, "skip %s: %s\n", spec.name.c_str(),
                   prepared.status().ToString().c_str());
      continue;
    }
    const CsrGraph& g = prepared->ranked;
    auto pairs = RandomPairs(g.num_vertices(), env.queries, 1234);

    // --- HopDb (hybrid, the paper's default).
    MethodResult hopdb;
    {
      BuildOptions opts;
      opts.time_budget_seconds = env.budget_seconds;
      auto out = BuildHopLabeling(g, opts);
      hopdb.status = out.status();
      if (out.ok()) {
        hopdb.build_seconds = out->stats.total_seconds;
        hopdb.index_bytes = out->index.PaperSizeBytes();
        QueryTiming t = TimeQueries(pairs, [&](VertexId s, VertexId t2) {
          return out->index.Query(s, t2);
        });
        hopdb.query_micros = t.avg_micros;
        hopdb.checksum = t.checksum;
        MeasureDiskQueries(out->index, *scratch, spec.name + ".hopdb",
                           pairs, &hopdb);
      }
    }

    // --- PLL.
    MethodResult pll;
    {
      PllOptions opts;
      opts.time_budget_seconds = env.budget_seconds;
      auto out = BuildPll(g, opts);
      pll.status = out.status();
      if (out.ok()) {
        pll.build_seconds = out->seconds;
        pll.index_bytes = out->index.PaperSizeBytes();
        QueryTiming t = TimeQueries(pairs, [&](VertexId s, VertexId t2) {
          return out->index.Query(s, t2);
        });
        pll.query_micros = t.avg_micros;
        pll.checksum = t.checksum;
      }
    }

    // --- IS-Label (full index; growth-capped like the paper's 24h cut).
    MethodResult is_label;
    {
      IsLabelOptions opts;
      opts.time_budget_seconds = is_budget;
      auto out = BuildIsLabel(g, opts);
      is_label.status = out.status();
      if (out.ok()) {
        is_label.build_seconds = out->seconds;
        is_label.index_bytes = out->index.PaperSizeBytes();
        QueryTiming t = TimeQueries(pairs, [&](VertexId s, VertexId t2) {
          return out->index.Query(s, t2);
        });
        is_label.query_micros = t.avg_micros;
        is_label.checksum = t.checksum;
        MeasureDiskQueries(out->index, *scratch, spec.name + ".isl", pairs,
                           &is_label);
      }
    }

    // --- BIDIJ (no index; cap the workload, searches are slow).
    MethodResult bidij;
    {
      BidirectionalSearcher searcher(g);
      size_t n = std::min<size_t>(pairs.size(), 1000);
      std::vector<QueryPair> sub(pairs.begin(), pairs.begin() + n);
      QueryTiming t = TimeQueries(sub, [&](VertexId s, VertexId t2) {
        return searcher.Query(s, t2);
      });
      bidij.query_micros = t.avg_micros;
      bidij.checksum = t.checksum;
    }

    // Cross-method answer consistency on the shared prefix is implied by
    // the test suite; checksums over identical workloads must agree.
    if (hopdb.status.ok() && pll.status.ok() &&
        hopdb.checksum != pll.checksum) {
      std::fprintf(stderr, "WARNING: %s HopDb/PLL checksum mismatch!\n",
                   spec.name.c_str());
    }

    if (spec.group != current_group) {
      current_group = spec.group;
      table.AddRow({"[" + current_group + "]", "", "", "", "", "", "", "",
                    "", "", "", "", "", "", "", "", "", ""});
    }
    table.AddRow({spec.name, HumanCount(g.num_vertices()),
                  HumanCount(g.num_edges()), HumanCount(prepared->max_degree),
                  Mb(prepared->graph_paper_bytes), SizeOrDash(is_label),
                  SizeOrDash(pll), SizeOrDash(hopdb),
                  SecondsOrDash(is_label.status, is_label.build_seconds),
                  SecondsOrDash(pll.status, pll.build_seconds),
                  SecondsOrDash(hopdb.status, hopdb.build_seconds),
                  FormatDouble(bidij.query_micros, 1), MicrosOrDash(is_label),
                  MicrosOrDash(pll), MicrosOrDash(hopdb), MsOrDash(is_label),
                  MsOrDash(hopdb),
                  hopdb.disk_blocks_per_query < 0
                      ? AsciiTable::Dash()
                      : FormatDouble(hopdb.disk_blocks_per_query, 2)});
  }
  table.Print();
  std::printf(
      "\nNotes: sizes use the paper's 5-byte-entry accounting; '—' = DNF\n"
      "(time budget or IS-Label growth cap, the paper's 24h-cut analogue).\n"
      "Disk query ms is page-cache-warm SSD; blk/q is the hardware-\n"
      "independent cost (the paper's 7200rpm times ≈ blk/q × seek time).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
