// Index-representation study: in-memory labels vs the paper's disk
// accounting vs the delta-varint CompressedIndex (labeling/
// compressed_index.h), with the query-latency cost of each.
//
// The paper reports index sizes under a 32-bit-pivot + 8-bit-distance
// accounting (Table 6). Scale-free labels are more compressible than
// that: pivots concentrate on the top ranks (Table 7), so delta-encoded
// pivot gaps are tiny. The trade is query-time decoding. This binary
// quantifies both sides on GLP stand-ins.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "gen/glp.h"
#include "gen/weights.h"
#include "labeling/compressed_index.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hopdb {
namespace bench {
namespace {

struct Family {
  const char* label;
  bool directed;
  bool weighted;
};

int Main(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "Index size and query latency across representations: "
                    "plain / paper accounting / delta-varint compressed.",
                    &env)) {
    return 0;
  }

  AsciiTable table({"graph", "entries", "mem MB", "paper MB", "comp MB",
                    "ratio", "plain us", "comp us"});
  for (const Family family :
       {Family{"glp-und-unw", false, false},
        Family{"glp-dir-unw", true, false},
        Family{"glp-und-wgt", false, true}}) {
    GlpOptions glp;
    glp.num_vertices = static_cast<VertexId>(40000 * env.scale);
    glp.target_avg_degree = 8;
    glp.seed = 777;
    EdgeList edges = family.directed
                         ? GenerateDirectedGlp(glp).ValueOrDie()
                         : GenerateGlp(glp).ValueOrDie();
    if (family.weighted) {
      AssignUniformWeights(&edges, 1, 9, 778);
    }
    auto base = CsrGraph::FromEdgeList(edges);
    base.status().CheckOK();
    auto ranked = RelabelByRank(
        *base, ComputeRanking(*base, family.directed
                                         ? RankingPolicy::kInOutProduct
                                         : RankingPolicy::kDegree));
    ranked.status().CheckOK();
    auto built = BuildHopLabeling(*ranked);
    built.status().CheckOK();
    const TwoHopIndex& plain = built->index;
    auto compressed = CompressedIndex::FromIndex(plain);
    compressed.status().CheckOK();

    const auto pairs = RandomPairs(plain.num_vertices(),
                                   std::min<size_t>(env.queries, 50000),
                                   42);
    const QueryTiming plain_timing = TimeQueries(
        pairs,
        [&](VertexId s, VertexId t) { return plain.Query(s, t); });
    const QueryTiming comp_timing = TimeQueries(
        pairs,
        [&](VertexId s, VertexId t) { return compressed->Query(s, t); });
    // Same answers, different representation.
    HOPDB_CHECK_EQ(plain_timing.checksum, comp_timing.checksum);

    table.AddRow(
        {family.label, std::to_string(plain.TotalEntries()),
         Mb(plain.SizeBytes()), Mb(plain.PaperSizeBytes()),
         Mb(compressed->SizeBytes()),
         FormatDouble(static_cast<double>(compressed->SizeBytes()) /
                          static_cast<double>(plain.PaperSizeBytes()),
                      2),
         FormatDouble(plain_timing.avg_micros, 2),
         FormatDouble(comp_timing.avg_micros, 2)});
  }
  table.Print();
  std::printf(
      "\nReading: the compressed form lands well below even the paper's "
      "5-byte-per-entry\naccounting (ratio column) at a modest per-query "
      "decode cost — the classic\nspace/time knob for disk-resident "
      "deployments.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Main(argc, argv); }
