// Figure 8 reproduction: label coverage (%) as a function of the top x%
// of ranked vertices, x swept over [0, 1]. The paper's curves saturate
// near 100% within the first 1% of vertices for every dataset.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace hopdb {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!InitBenchEnv(argc, argv,
                    "fig8_coverage: Figure 8 — label coverage by top-ranked "
                    "vertices",
                    &env)) {
    return 0;
  }
  const std::vector<double> percents = {0.02, 0.05, 0.1, 0.2,
                                        0.4,  0.6,  0.8, 1.0};
  std::printf(
      "Figure 8: label coverage by top x%% of ranked vertices "
      "(series per dataset)\n\n");
  std::vector<std::string> headers = {"Graph"};
  for (double p : percents) headers.push_back(FormatDouble(p, 2) + "%");
  AsciiTable table(headers);

  for (const DatasetSpec& spec : SelectDatasets(env)) {
    auto prepared = PrepareDataset(spec, env);
    if (!prepared.ok()) {
      std::fprintf(stderr, "skip %s: %s\n", spec.name.c_str(),
                   prepared.status().ToString().c_str());
      continue;
    }
    BuildOptions opts;
    opts.time_budget_seconds = env.budget_seconds;
    auto out = BuildHopLabeling(prepared->ranked, opts);
    if (!out.ok()) continue;
    auto per_pivot = out->index.EntriesPerPivot();
    const VertexId n = prepared->ranked.num_vertices();
    std::vector<VertexId> checkpoints;
    for (double p : percents) {
      checkpoints.push_back(
          static_cast<VertexId>(static_cast<double>(n) * p / 100.0));
    }
    auto coverage = PivotCoverage(per_pivot, checkpoints);
    std::vector<std::string> row = {spec.name};
    for (double c : coverage) row.push_back(FormatDouble(100.0 * c, 1));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: every curve is steep and concave — a\n"
      "fixed handful of hubs covers the bulk of all entries. The paper's\n"
      "curves reach ~100%% at 1%% because its graphs are 1-3 orders larger\n"
      "(the hub COUNT, not the hub fraction, is what saturates coverage);\n"
      "run with --scale/--tier to watch the 1%% coverage rise with |V|.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace hopdb

int main(int argc, char** argv) { return hopdb::bench::Run(argc, argv); }
